//! Declarative protocol descriptions.
//!
//! A [`ProtocolSpec`] accumulates named states (each with its group under
//! the output map `f`), a designated initial state, and transition rules,
//! then compiles into a validated [`CompiledProtocol`]. Rules are given on
//! *ordered* pairs; [`ProtocolSpec::add_rule_symmetric`] registers both
//! orders at once with mirrored results, which is how the paper writes its
//! rules (an interaction between an agent in state `p` and one in state `q`
//! sends them to `p'` and `q'` respectively, regardless of order).
//!
//! Rules may carry a *label* (the `_labelled` variants) identifying which
//! of the paper's numbered rules an ordered pair belongs to; the compiled
//! protocol maps every labelled non-identity pair back to its rule id, so
//! trace classifiers and per-rule telemetry can attribute interactions to
//! the paper's rules rather than raw state pairs.

use crate::protocol::{CompiledProtocol, GroupId, ProtocolError, RuleId, StateId};

/// Builder for population protocols.
#[derive(Clone)]
pub struct ProtocolSpec {
    name: String,
    state_names: Vec<String>,
    groups: Vec<GroupId>,
    initial: Option<StateId>,
    /// Sparse rule list on ordered pairs; conflicts detected at compile time.
    rules: Vec<(StateId, StateId, StateId, StateId)>,
    /// Optional label per entry of `rules`, kept parallel.
    rule_labels: Vec<Option<String>>,
}

impl ProtocolSpec {
    /// Start an empty protocol description.
    pub fn new(name: impl Into<String>) -> Self {
        ProtocolSpec {
            name: name.into(),
            state_names: Vec::new(),
            groups: Vec::new(),
            initial: None,
            rules: Vec::new(),
            rule_labels: Vec::new(),
        }
    }

    /// Add a state with the given name, assigned to `group` (1-based, as in
    /// the paper's map `f`). Returns the new state's id.
    pub fn add_state(&mut self, name: impl Into<String>, group: u16) -> StateId {
        assert!(group >= 1, "groups are 1-based");
        self.add_state_raw(name, group)
    }

    /// Like [`Self::add_state`] but without the 1-based assertion; used by
    /// tests to exercise compile-time validation.
    pub fn add_state_raw(&mut self, name: impl Into<String>, group: u16) -> StateId {
        let id = StateId(self.state_names.len() as u16);
        self.state_names.push(name.into());
        self.groups.push(GroupId(group));
        id
    }

    /// Designate the initial state `s0`.
    pub fn set_initial(&mut self, s: StateId) {
        self.initial = Some(s);
    }

    /// Register the ordered rule `(p, q) → (p2, q2)` without a label.
    pub fn add_rule(&mut self, p: StateId, q: StateId, p2: StateId, q2: StateId) {
        self.rules.push((p, q, p2, q2));
        self.rule_labels.push(None);
    }

    /// Register the ordered rule `(p, q) → (p2, q2)` carrying a rule label
    /// (e.g. `"r5"` for the paper's rule 5). Pairs sharing a label fold
    /// into one compiled rule id; a later labelled registration for the
    /// same pair overwrites an earlier label.
    pub fn add_rule_labelled(
        &mut self,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        label: impl Into<String>,
    ) {
        self.rules.push((p, q, p2, q2));
        self.rule_labels.push(Some(label.into()));
    }

    /// Register `(p, q) → (p2, q2)` *and* its mirror `(q, p) → (q2, p2)`.
    ///
    /// This matches the paper's unordered rule notation. When `p == q` the
    /// mirror coincides with the rule itself and the result must satisfy the
    /// symmetry condition `p2 == q2` for the protocol to be symmetric (this
    /// is validated by [`CompiledProtocol::is_symmetric`], not here, so that
    /// asymmetric protocols can also be described).
    pub fn add_rule_symmetric(&mut self, p: StateId, q: StateId, p2: StateId, q2: StateId) {
        self.add_rule(p, q, p2, q2);
        if p != q {
            self.add_rule(q, p, q2, p2);
        }
    }

    /// Labelled form of [`Self::add_rule_symmetric`]: both orders share the
    /// same rule label, so the mirror of a rule attributes to the same id.
    pub fn add_rule_symmetric_labelled(
        &mut self,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        label: impl Into<String>,
    ) {
        let label = label.into();
        self.add_rule_labelled(p, q, p2, q2, label.clone());
        if p != q {
            self.add_rule_labelled(q, p, q2, p2, label);
        }
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// The protocol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterator over the registered rules in registration order, as
    /// `(p, q, p2, q2, label)`. Mirror registrations appear as separate
    /// entries, exactly as they will be compiled.
    pub fn rules(
        &self,
    ) -> impl Iterator<Item = (StateId, StateId, StateId, StateId, Option<&str>)> {
        self.rules
            .iter()
            .zip(&self.rule_labels)
            .map(|(&(p, q, p2, q2), label)| (p, q, p2, q2, label.as_deref()))
    }

    /// Keep only the rules for which `keep` returns true. The primary
    /// consumer is protocol mutation (lint sensitivity tests, fault
    /// injection): drop a mirror, delete a rule, then re-register a
    /// perturbed version with [`Self::add_rule_labelled`].
    pub fn retain_rules<F>(&mut self, mut keep: F)
    where
        F: FnMut(StateId, StateId, StateId, StateId, Option<&str>) -> bool,
    {
        let mut kept_labels = Vec::with_capacity(self.rule_labels.len());
        let labels = std::mem::take(&mut self.rule_labels);
        let mut li = labels.into_iter();
        self.rules.retain(|&(p, q, p2, q2)| {
            let label = li.next().expect("rules/labels kept parallel");
            let keep_it = keep(p, q, p2, q2, label.as_deref());
            if keep_it {
                kept_labels.push(label);
            }
            keep_it
        });
        self.rule_labels = kept_labels;
    }

    /// Validate and compile into a dense-table protocol.
    ///
    /// Every ordered pair without a rule defaults to the identity
    /// transition. Duplicate rules are tolerated when they agree and
    /// rejected when they conflict.
    pub fn compile(&self) -> Result<CompiledProtocol, ProtocolError> {
        let s = self.state_names.len();
        if s == 0 {
            return Err(ProtocolError::EmptyStateSet);
        }
        let initial = self.initial.ok_or(ProtocolError::MissingInitialState)?;
        let mut table: Vec<(StateId, StateId)> = Vec::with_capacity(s * s);
        for p in 0..s {
            for q in 0..s {
                table.push((StateId(p as u16), StateId(q as u16)));
            }
        }
        let mut written = vec![false; s * s];
        let mut rule_names: Vec<String> = Vec::new();
        let mut rule_table: Vec<u16> = vec![RuleId::NONE_RAW; s * s];
        for (&(p, q, p2, q2), label) in self.rules.iter().zip(&self.rule_labels) {
            for x in [p, q, p2, q2] {
                if x.index() >= s {
                    return Err(ProtocolError::StateOutOfRange(x));
                }
            }
            let idx = p.index() * s + q.index();
            if written[idx] && table[idx] != (p2, q2) {
                return Err(ProtocolError::ConflictingRule { p, q });
            }
            table[idx] = (p2, q2);
            written[idx] = true;
            if let Some(label) = label {
                let id = match rule_names.iter().position(|n| n == label) {
                    Some(i) => i as u16,
                    None => {
                        rule_names.push(label.clone());
                        (rule_names.len() - 1) as u16
                    }
                };
                rule_table[idx] = id;
            }
        }
        CompiledProtocol::from_parts(
            self.name.clone(),
            self.state_names.clone(),
            self.groups.clone(),
            initial,
            table,
            rule_table,
            rule_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_rule_registers_mirror() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        let d = spec.add_state("d", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, b, c, d);
        let p = spec.compile().unwrap();
        assert_eq!(p.delta(a, b), (c, d));
        assert_eq!(p.delta(b, a), (d, c));
    }

    #[test]
    fn missing_initial_rejected() {
        let mut spec = ProtocolSpec::new("t");
        spec.add_state("a", 1);
        assert_eq!(
            spec.compile().unwrap_err(),
            ProtocolError::MissingInitialState
        );
    }

    #[test]
    fn empty_state_set_rejected() {
        let spec = ProtocolSpec::new("t");
        assert_eq!(spec.compile().unwrap_err(), ProtocolError::EmptyStateSet);
    }

    #[test]
    fn conflicting_rules_rejected() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(a, a, a, b);
        assert!(matches!(
            spec.compile().unwrap_err(),
            ProtocolError::ConflictingRule { .. }
        ));
    }

    #[test]
    fn duplicate_agreeing_rules_tolerated() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(a, a, b, b);
        assert!(spec.compile().is_ok());
    }

    #[test]
    fn labelled_rules_compile_to_rule_ids() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric_labelled(a, b, c, c, "r1");
        spec.add_rule_labelled(a, a, b, b, "r2");
        spec.add_rule(b, b, c, c); // unlabelled
        let p = spec.compile().unwrap();
        assert_eq!(p.num_rules(), 2);
        // Both orders of a symmetric rule share one id.
        let r_ab = p.rule_of(a, b).unwrap();
        assert_eq!(p.rule_of(b, a), Some(r_ab));
        assert_eq!(p.rule_name(r_ab), "r1");
        assert_eq!(p.rule_name(p.rule_of(a, a).unwrap()), "r2");
        // Unlabelled rules and identity pairs attribute to no rule.
        assert_eq!(p.rule_of(b, b), None);
        assert_eq!(p.rule_of(c, c), None);
        assert_eq!(p.rule_by_name("r2"), p.rule_of(a, a));
        assert_eq!(p.rule_by_name("nope"), None);
    }

    #[test]
    fn rule_with_unknown_state_rejected() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        spec.add_rule(a, StateId(9), a, a);
        assert!(matches!(
            spec.compile().unwrap_err(),
            ProtocolError::StateOutOfRange(_)
        ));
    }
}
