//! Declarative protocol descriptions.
//!
//! A [`ProtocolSpec`] accumulates named states (each with its group under
//! the output map `f`), a designated initial state, and transition rules,
//! then compiles into a validated [`CompiledProtocol`]. Rules are given on
//! *ordered* pairs; [`ProtocolSpec::add_rule_symmetric`] registers both
//! orders at once with mirrored results, which is how the paper writes its
//! rules (an interaction between an agent in state `p` and one in state `q`
//! sends them to `p'` and `q'` respectively, regardless of order).

use crate::protocol::{CompiledProtocol, GroupId, ProtocolError, StateId};

/// Builder for population protocols.
#[derive(Clone)]
pub struct ProtocolSpec {
    name: String,
    state_names: Vec<String>,
    groups: Vec<GroupId>,
    initial: Option<StateId>,
    /// Sparse rule list on ordered pairs; conflicts detected at compile time.
    rules: Vec<(StateId, StateId, StateId, StateId)>,
}

impl ProtocolSpec {
    /// Start an empty protocol description.
    pub fn new(name: impl Into<String>) -> Self {
        ProtocolSpec {
            name: name.into(),
            state_names: Vec::new(),
            groups: Vec::new(),
            initial: None,
            rules: Vec::new(),
        }
    }

    /// Add a state with the given name, assigned to `group` (1-based, as in
    /// the paper's map `f`). Returns the new state's id.
    pub fn add_state(&mut self, name: impl Into<String>, group: u16) -> StateId {
        assert!(group >= 1, "groups are 1-based");
        self.add_state_raw(name, group)
    }

    /// Like [`Self::add_state`] but without the 1-based assertion; used by
    /// tests to exercise compile-time validation.
    pub fn add_state_raw(&mut self, name: impl Into<String>, group: u16) -> StateId {
        let id = StateId(self.state_names.len() as u16);
        self.state_names.push(name.into());
        self.groups.push(GroupId(group));
        id
    }

    /// Designate the initial state `s0`.
    pub fn set_initial(&mut self, s: StateId) {
        self.initial = Some(s);
    }

    /// Register the ordered rule `(p, q) → (p2, q2)`.
    pub fn add_rule(&mut self, p: StateId, q: StateId, p2: StateId, q2: StateId) {
        self.rules.push((p, q, p2, q2));
    }

    /// Register `(p, q) → (p2, q2)` *and* its mirror `(q, p) → (q2, p2)`.
    ///
    /// This matches the paper's unordered rule notation. When `p == q` the
    /// mirror coincides with the rule itself and the result must satisfy the
    /// symmetry condition `p2 == q2` for the protocol to be symmetric (this
    /// is validated by [`CompiledProtocol::is_symmetric`], not here, so that
    /// asymmetric protocols can also be described).
    pub fn add_rule_symmetric(&mut self, p: StateId, q: StateId, p2: StateId, q2: StateId) {
        self.add_rule(p, q, p2, q2);
        if p != q {
            self.add_rule(q, p, q2, p2);
        }
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Validate and compile into a dense-table protocol.
    ///
    /// Every ordered pair without a rule defaults to the identity
    /// transition. Duplicate rules are tolerated when they agree and
    /// rejected when they conflict.
    pub fn compile(&self) -> Result<CompiledProtocol, ProtocolError> {
        let s = self.state_names.len();
        if s == 0 {
            return Err(ProtocolError::EmptyStateSet);
        }
        let initial = self.initial.ok_or(ProtocolError::MissingInitialState)?;
        let mut table: Vec<(StateId, StateId)> = Vec::with_capacity(s * s);
        for p in 0..s {
            for q in 0..s {
                table.push((StateId(p as u16), StateId(q as u16)));
            }
        }
        let mut written = vec![false; s * s];
        for &(p, q, p2, q2) in &self.rules {
            for x in [p, q, p2, q2] {
                if x.index() >= s {
                    return Err(ProtocolError::StateOutOfRange(x));
                }
            }
            let idx = p.index() * s + q.index();
            if written[idx] && table[idx] != (p2, q2) {
                return Err(ProtocolError::ConflictingRule { p, q });
            }
            table[idx] = (p2, q2);
            written[idx] = true;
        }
        CompiledProtocol::from_parts(
            self.name.clone(),
            self.state_names.clone(),
            self.groups.clone(),
            initial,
            table,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_rule_registers_mirror() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        let d = spec.add_state("d", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, b, c, d);
        let p = spec.compile().unwrap();
        assert_eq!(p.delta(a, b), (c, d));
        assert_eq!(p.delta(b, a), (d, c));
    }

    #[test]
    fn missing_initial_rejected() {
        let mut spec = ProtocolSpec::new("t");
        spec.add_state("a", 1);
        assert_eq!(
            spec.compile().unwrap_err(),
            ProtocolError::MissingInitialState
        );
    }

    #[test]
    fn empty_state_set_rejected() {
        let spec = ProtocolSpec::new("t");
        assert_eq!(spec.compile().unwrap_err(), ProtocolError::EmptyStateSet);
    }

    #[test]
    fn conflicting_rules_rejected() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(a, a, a, b);
        assert!(matches!(
            spec.compile().unwrap_err(),
            ProtocolError::ConflictingRule { .. }
        ));
    }

    #[test]
    fn duplicate_agreeing_rules_tolerated() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(a, a, b, b);
        assert!(spec.compile().is_ok());
    }

    #[test]
    fn rule_with_unknown_state_rejected() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        spec.add_rule(a, StateId(9), a, a);
        assert!(matches!(
            spec.compile().unwrap_err(),
            ProtocolError::StateOutOfRange(_)
        ));
    }
}
