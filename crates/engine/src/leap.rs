//! The leap kernel's algebra: identity-pair weights and batched skips.
//!
//! Under the uniform random scheduler, the next interaction draws an
//! ordered pair of distinct agents uniformly from the `T = n(n−1)`
//! possibilities. In configuration `c` the number of those pairs whose
//! transition is the *identity* is
//!
//! ```text
//! W_id(c) = Σ_{p,q} id(p, q) · c_p · (c_q − [p = q])
//! ```
//!
//! so each step is an identity with probability `ρ = W_id / T`,
//! independently of everything else, *as long as the configuration does
//! not change* — and identity interactions are exactly the ones that do
//! not change it. The number `G` of consecutive identity interactions
//! before the next effective one is therefore geometric:
//! `P(G = g) = ρ^g (1 − ρ)`. The leap kernel samples `G` in closed form
//! (inversion: `G = ⌊ln U / ln ρ⌋` for `U` uniform on `(0, 1]`), credits
//! `G` interactions to the paper's §5 counter in O(1), and then samples
//! one pair from the conditional distribution on *effective* pairs. The
//! composite process has exactly the law of the naive one-step loop; the
//! only deviation is the f64 rounding inside the geometric inversion
//! (one sample from a distribution within ~2⁻⁵³ of exact), which is far
//! below statistical resolution at any feasible trial count.
//!
//! [`IdentityWeights`] maintains `W_id` incrementally: per applied
//! transition (four ±1 count deltas) the update costs O(|Q|), against the
//! O(1) lookup cost of the naive loop — a trade that wins whenever the
//! expected identity-run length exceeds a few |Q|, which is precisely the
//! stabilisation-dominated regime the paper's large-`n` measurements live
//! in.

use crate::protocol::{CompiledProtocol, StateId};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// Maintained weight of identity ordered pairs in the current
/// configuration, with per-state row/column marginals for O(|Q|) updates
/// and O(occupied states) conditional sampling.
#[derive(Clone, Debug)]
pub struct IdentityWeights {
    /// `row[p] = Σ_q id(p, q) · c_q` — identity mass of state `p` as
    /// first participant, per agent of `p` (before the `p = q` exclusion).
    row: Vec<u64>,
    /// `col[s] = Σ_p id(p, s) · c_p` — identity mass of state `s` as
    /// second participant, per agent of `s`.
    col: Vec<u64>,
    /// `diag[p] = id(p, p)` cached.
    diag: Vec<bool>,
    /// `W_id` for the current configuration.
    w_id: u64,
}

impl IdentityWeights {
    /// Compute the weights of configuration `counts` from scratch
    /// (O(|Q|²)); done once per run.
    pub fn new(proto: &CompiledProtocol, counts: &[u64]) -> Self {
        let m = counts.len();
        debug_assert_eq!(m, proto.num_states());
        let mut row = vec![0u64; m];
        let mut col = vec![0u64; m];
        let mut diag = vec![false; m];
        for p in 0..m {
            let id_row = proto.identity_row(StateId(p as u16));
            diag[p] = id_row[p];
            let mut r = 0;
            for (q, &cq) in counts.iter().enumerate() {
                if id_row[q] {
                    r += cq;
                    col[q] += counts[p];
                }
            }
            row[p] = r;
        }
        // W_id = Σ_p c_p·(row[p] − id(p,p)): the [p = q] exclusion removes
        // one pairing per agent of each identity-diagonal state. When
        // c_p ≥ 1 and id(p,p), row[p] ≥ c_p ≥ 1, so the subtraction is safe.
        let w_id: u64 = counts
            .iter()
            .enumerate()
            .map(|(p, &cp)| {
                if cp == 0 {
                    0
                } else {
                    cp * (row[p] - u64::from(diag[p]))
                }
            })
            .sum();
        IdentityWeights {
            row,
            col,
            diag,
            w_id,
        }
    }

    /// Current `W_id`: the number of ordered agent pairs whose interaction
    /// would be an identity.
    #[inline(always)]
    pub fn identity_weight(&self) -> u64 {
        self.w_id
    }

    /// Fold one count delta (`delta ∈ {−1, +1}`) on state `s`, keeping
    /// `W_id` and the marginals exact. O(|Q|).
    ///
    /// With `R = row[s]`, `C = col[s]` *before* the delta,
    /// `ΔW_id = δ·(R + C) + (δ² − δ)·id(s, s)` — the algebraic expansion
    /// of `W_id` under `c_s → c_s + δ` (the `(δ² − δ)` term folds the
    /// diagonal product change and the `[p = q]` exclusion together).
    #[inline]
    pub fn apply_delta(&mut self, proto: &CompiledProtocol, s: StateId, delta: i64) {
        debug_assert!(delta == 1 || delta == -1);
        let si = s.index();
        let rc = self.row[si] + self.col[si];
        if delta > 0 {
            self.w_id += rc;
        } else {
            self.w_id = self.w_id + 2 * u64::from(self.diag[si]) - rc;
        }
        let id_col = proto.identity_col(s); // id(p, s): feeds row[p]
        let id_row = proto.identity_row(s); // id(s, p): feeds col[p]
        if delta > 0 {
            for (p, (&in_row, &in_col)) in id_col.iter().zip(id_row).enumerate() {
                self.row[p] += u64::from(in_row);
                self.col[p] += u64::from(in_col);
            }
        } else {
            for (p, (&in_row, &in_col)) in id_col.iter().zip(id_row).enumerate() {
                self.row[p] -= u64::from(in_row);
                self.col[p] -= u64::from(in_col);
            }
        }
    }

    /// Sample an ordered pair of distinct agents conditioned on the
    /// interaction being *effective* (non-identity), with the exact
    /// conditional distribution of the uniform random scheduler.
    ///
    /// Takes the population as a raw `(n, counts)` pair so callers that
    /// work on detached count vectors (the batch kernel's exact-fallback
    /// steps, the fleet runner) can share this code path bit-for-bit with
    /// [`crate::simulator::Simulator::run_leap`].
    ///
    /// Requires `W_eff = n(n−1) − W_id > 0`. Cost is O(occupied states)
    /// for the row scan plus O(|Q|) for the column scan of the chosen row.
    pub fn sample_effective(
        &self,
        proto: &CompiledProtocol,
        n: u64,
        counts: &[u64],
        rng: &mut SmallRng,
    ) -> (StateId, StateId) {
        let total = n * (n - 1);
        let w_eff = total - self.w_id;
        debug_assert!(w_eff > 0, "no effective pair enabled");
        let mut target = rng.gen_range(0..w_eff);
        for (pi, &cp) in counts.iter().enumerate() {
            if cp == 0 {
                continue;
            }
            let d = u64::from(self.diag[pi]);
            // Effective weight of row p: c_p·(n−1) total minus the row's
            // identity weight c_p·(row[p] − id(p,p)).
            debug_assert!(n - 1 + d >= self.row[pi]);
            let row_eff = cp * (n - 1 + d - self.row[pi]);
            if target >= row_eff {
                target -= row_eff;
                continue;
            }
            let p = StateId(pi as u16);
            let id_row = proto.identity_row(p);
            for (qi, &cq) in counts.iter().enumerate() {
                if id_row[qi] {
                    continue;
                }
                let w = cp * (cq - u64::from(qi == pi));
                if target < w {
                    return (p, StateId(qi as u16));
                }
                target -= w;
            }
            unreachable!("effective-pair column scan exhausted");
        }
        unreachable!("effective-pair row scan exhausted");
    }
}

/// Sample the length of the maximal run of consecutive identity
/// interactions before the next effective one: `G ~ Geometric(1 − ρ)`
/// with `ρ = w_id / total`, via inversion `G = ⌊ln U / ln ρ⌋` for `U`
/// uniform on `(0, 1]`.
///
/// Requires `w_id < total` (some effective pair is enabled); saturates at
/// `u64::MAX`, which every caller treats as exceeding its remaining
/// interaction budget.
pub fn sample_identity_run(rng: &mut SmallRng, w_id: u64, total: u64) -> u64 {
    debug_assert!(w_id < total);
    if w_id == 0 {
        return 0;
    }
    // Clamp ρ strictly below 1.0: for total > 2^53 the f64 quotient can
    // round to exactly 1.0, which would make the inversion divide by zero.
    let rho = ((w_id as f64) / (total as f64)).min(1.0 - f64::EPSILON / 2.0);
    // 53 high bits of a u64, shifted into (0, 1]: never exactly 0, so the
    // logarithm is finite.
    let u = (((rng.next_u64() >> 11) + 1) as f64) / ((1u64 << 53) as f64);
    let g = u.ln() / rho.ln();
    debug_assert!(g >= 0.0);
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{CountPopulation, Population};
    use crate::spec::ProtocolSpec;
    use rand::SeedableRng;

    /// Epidemic: (I, S) and (S, I) are the only non-identity pairs.
    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    /// Brute-force W_id for cross-checking.
    fn w_id_brute(proto: &CompiledProtocol, counts: &[u64]) -> u64 {
        let mut w = 0;
        for p in proto.states() {
            for q in proto.states() {
                if proto.is_identity(p, q) {
                    let cp = counts[p.index()];
                    let cq = counts[q.index()];
                    w += cp * (cq - u64::from(p == q).min(cq));
                }
            }
        }
        w
    }

    #[test]
    fn weights_match_brute_force() {
        let proto = epidemic();
        for counts in [[10, 0], [0, 10], [7, 3], [1, 1], [2, 0]] {
            let w = IdentityWeights::new(&proto, &counts);
            assert_eq!(
                w.identity_weight(),
                w_id_brute(&proto, &counts),
                "{counts:?}"
            );
        }
    }

    #[test]
    fn apply_delta_tracks_brute_force() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut counts = vec![8u64, 2];
        let mut w = IdentityWeights::new(&proto, &counts);
        // Replay a sequence of infections (S count down, I count up).
        for _ in 0..8 {
            w.apply_delta(&proto, s, -1);
            counts[s.index()] -= 1;
            w.apply_delta(&proto, i, 1);
            counts[i.index()] += 1;
            assert_eq!(
                w.identity_weight(),
                w_id_brute(&proto, &counts),
                "{counts:?}"
            );
        }
        // And back down again (hypothetical reverse deltas).
        for _ in 0..4 {
            w.apply_delta(&proto, i, -1);
            counts[i.index()] -= 1;
            w.apply_delta(&proto, s, 1);
            counts[s.index()] += 1;
            assert_eq!(
                w.identity_weight(),
                w_id_brute(&proto, &counts),
                "{counts:?}"
            );
        }
    }

    #[test]
    fn effective_sampling_matches_conditional_distribution() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 10);
        pop.set_count(s, 6);
        pop.set_count(i, 4);
        let w = IdentityWeights::new(&proto, pop.counts());
        // Effective pairs: (S, I) weight 6·4 = 24, (I, S) weight 4·6 = 24.
        let mut rng = SmallRng::seed_from_u64(7);
        let trials = 20_000;
        let mut si = 0u32;
        for _ in 0..trials {
            let (p, q) = w.sample_effective(&proto, pop.num_agents(), pop.counts(), &mut rng);
            assert!(!proto.is_identity(p, q));
            if (p, q) == (s, i) {
                si += 1;
            } else {
                assert_eq!((p, q), (i, s));
            }
        }
        let frac = f64::from(si) / f64::from(trials);
        assert!((frac - 0.5).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn identity_run_mean_matches_geometric() {
        // ρ = 3/4 → E[G] = ρ/(1−ρ) = 3.
        let mut rng = SmallRng::seed_from_u64(99);
        let trials = 100_000;
        let sum: u64 = (0..trials)
            .map(|_| sample_identity_run(&mut rng, 3, 4))
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn identity_run_zero_weight_is_zero() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_identity_run(&mut rng, 0, 12), 0);
    }
}
