//! Interaction schedulers.
//!
//! The population protocol model leaves the choice of interacting pair to a
//! scheduler constrained by a fairness assumption. The paper proves
//! correctness under **global fairness** (every configuration reachable
//! from one occurring infinitely often itself occurs infinitely often) and
//! evaluates time complexity under the **uniform random scheduler** (two
//! distinct agents chosen uniformly at random each step), which produces
//! globally fair executions with probability 1.
//!
//! Two scheduler families exist because the two population representations
//! expose different sampling surfaces: [`PairScheduler`] picks an ordered
//! *state* pair from a [`CountPopulation`] (weighted by counts, without
//! replacement), and [`AgentScheduler`] picks an ordered *agent index* pair
//! from an [`AgentPopulation`]. [`UniformRandomScheduler`] implements both
//! with identical distributions, which tests exploit to cross-validate the
//! representations.

use crate::population::{AgentPopulation, CountPopulation, Population};
use crate::protocol::StateId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Chooses the ordered state pair for the next interaction of a
/// count-vector population.
pub trait PairScheduler {
    /// Select an ordered pair of states `(p, q)` of two *distinct* agents.
    /// Requires `pop.num_agents() ≥ 2`.
    fn select_pair(&mut self, pop: &CountPopulation) -> (StateId, StateId);
}

/// Chooses the ordered agent pair for the next interaction of a per-agent
/// population.
pub trait AgentScheduler {
    /// Select an ordered pair of distinct agent indices.
    /// Requires `pop.num_agents() ≥ 2`.
    fn select_agents(&mut self, pop: &AgentPopulation) -> (usize, usize);
}

/// The paper's scheduler: each step, an ordered pair of distinct agents is
/// chosen uniformly at random.
///
/// On an infinite execution this scheduler is globally fair with
/// probability 1 (every reachable configuration has positive probability of
/// being reached from any configuration that recurs infinitely often).
#[derive(Clone, Debug)]
pub struct UniformRandomScheduler {
    rng: SmallRng,
}

impl UniformRandomScheduler {
    /// Deterministic scheduler from an explicit seed. All experiment
    /// harnesses pass recorded seeds so results are bit-reproducible.
    pub fn from_seed(seed: u64) -> Self {
        UniformRandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Access the underlying RNG (used by fault-injection examples to draw
    /// correlated randomness).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

impl PairScheduler for UniformRandomScheduler {
    #[inline]
    fn select_pair(&mut self, pop: &CountPopulation) -> (StateId, StateId) {
        let n = pop.num_agents();
        debug_assert!(n >= 2, "need at least two agents to interact");
        let p = pop.state_of_rank(self.rng.gen_range(0..n));
        let q = pop.state_of_rank_excluding(self.rng.gen_range(0..n - 1), p);
        (p, q)
    }
}

impl AgentScheduler for UniformRandomScheduler {
    #[inline]
    fn select_agents(&mut self, pop: &AgentPopulation) -> (usize, usize) {
        let n = pop.num_agents() as usize;
        debug_assert!(n >= 2, "need at least two agents to interact");
        let i = self.rng.gen_range(0..n);
        let mut j = self.rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }
}

/// Deterministic round-robin over ordered agent pairs, cycling through
/// `(0,1), (0,2), …, (n−1, n−2)` forever.
///
/// Round-robin is *weakly* fair but not globally fair in general; it is
/// provided for deterministic unit tests and to demonstrate executions on
/// which weaker fairness fails to make progress.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: u64,
}

impl RoundRobinScheduler {
    /// Start at the first pair.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AgentScheduler for RoundRobinScheduler {
    fn select_agents(&mut self, pop: &AgentPopulation) -> (usize, usize) {
        let n = pop.num_agents() as usize;
        let pairs = (n * (n - 1)) as u64;
        let c = (self.cursor % pairs) as usize;
        self.cursor = self.cursor.wrapping_add(1);
        let i = c / (n - 1);
        let mut j = c % (n - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }
}

/// Replays an explicit queue of ordered state pairs, then falls back to a
/// wrapped scheduler. Used by tests to script a prefix (e.g. the executions
/// of the paper's Figures 1 and 2) and then let randomness finish the run.
#[derive(Debug)]
pub struct ScriptedPairScheduler<S> {
    script: std::collections::VecDeque<(StateId, StateId)>,
    fallback: S,
}

impl<S> ScriptedPairScheduler<S> {
    /// Schedule `script` first, then defer to `fallback`.
    pub fn new(script: Vec<(StateId, StateId)>, fallback: S) -> Self {
        ScriptedPairScheduler {
            script: script.into(),
            fallback,
        }
    }

    /// Number of scripted pairs not yet consumed.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl<S: PairScheduler> PairScheduler for ScriptedPairScheduler<S> {
    fn select_pair(&mut self, pop: &CountPopulation) -> (StateId, StateId) {
        if let Some((p, q)) = self.script.pop_front() {
            assert!(
                pop.count(p) >= 1 && pop.count(q) >= if p == q { 2 } else { 1 },
                "scripted pair ({p:?}, {q:?}) not available in population"
            );
            (p, q)
        } else {
            self.fallback.select_pair(pop)
        }
    }
}

/// An adversarial scheduler that greedily picks, among the currently
/// enabled *non-identity* ordered state pairs, the one maximising a
/// user-supplied priority; falls back to uniform random among agents when
/// every enabled pair is an identity (so executions remain infinite).
///
/// This scheduler is not fair in general. It exists to construct worst-case
/// executions — e.g. to drive the "basic strategy" ablation of §3.2 into
/// configurations with too many chain-builder (`m`) agents.
pub struct GreedyPriorityScheduler<F> {
    priority: F,
    rng: SmallRng,
}

impl<F> GreedyPriorityScheduler<F>
where
    F: FnMut(StateId, StateId) -> i64,
{
    /// Build from a priority function and a seed for tie-breaking fallback.
    pub fn new(priority: F, seed: u64) -> Self {
        GreedyPriorityScheduler {
            priority,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<F> PairScheduler for GreedyPriorityScheduler<F>
where
    F: FnMut(StateId, StateId) -> i64,
{
    fn select_pair(&mut self, pop: &CountPopulation) -> (StateId, StateId) {
        let counts = pop.counts();
        let mut best: Option<(i64, StateId, StateId)> = None;
        for (pi, &cp) in counts.iter().enumerate() {
            if cp == 0 {
                continue;
            }
            let p = StateId(pi as u16);
            for (qi, &cq) in counts.iter().enumerate() {
                let need = if pi == qi { 2 } else { 1 };
                if cq < need {
                    continue;
                }
                let q = StateId(qi as u16);
                let pr = (self.priority)(p, q);
                if best.is_none_or(|(b, _, _)| pr > b) {
                    best = Some((pr, p, q));
                }
            }
        }
        match best {
            Some((_, p, q)) => (p, q),
            None => {
                // Fewer than two agents of any state: fall back to uniform.
                let n = pop.num_agents();
                let p = pop.state_of_rank(self.rng.gen_range(0..n));
                let q = pop.state_of_rank_excluding(self.rng.gen_range(0..n - 1), p);
                (p, q)
            }
        }
    }
}

/// A *deterministic* scheduler whose infinite executions are globally
/// fair: among the currently enabled ordered pairs it always performs the
/// one whose successor configuration has been visited least often
/// (ties broken by pair order).
///
/// Global fairness demands that every configuration reachable from one
/// occurring infinitely often itself occurs infinitely often. Randomness
/// delivers that with probability 1; this scheduler delivers it by
/// construction on finite configuration spaces — if some configuration
/// `C` recurs forever, each of its successors has unboundedly growing
/// visit deficit and is eventually the minimum, hence taken. It exists to
/// demonstrate (and test) that the paper's correctness claim is about
/// fairness, not about probability: the k-partition protocol stabilises
/// under this scheduler too, with *zero* randomness.
///
/// Cost: a hash-map lookup per enabled pair per step — fine for the
/// small populations it is meant for.
#[derive(Debug, Default)]
pub struct LeastVisitedScheduler {
    visits: std::collections::HashMap<Vec<u64>, u64>,
}

impl LeastVisitedScheduler {
    /// Fresh scheduler with an empty visit table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct configurations visited so far.
    pub fn distinct_configs(&self) -> usize {
        self.visits.len()
    }
}

impl PairScheduler for LeastVisitedScheduler {
    fn select_pair(&mut self, pop: &CountPopulation) -> (StateId, StateId) {
        let counts = pop.counts();
        let mut best: Option<(u64, StateId, StateId)> = None;
        for (pi, &cp) in counts.iter().enumerate() {
            if cp == 0 {
                continue;
            }
            for (qi, &cq) in counts.iter().enumerate() {
                if cq < if pi == qi { 2 } else { 1 } {
                    continue;
                }
                let (p, q) = (StateId(pi as u16), StateId(qi as u16));
                // Successor under an arbitrary protocol is unknown here;
                // the scheduler tracks *pair histories* keyed by the
                // configuration instead: visit count of (config, pair).
                let mut key: Vec<u64> = counts.to_vec();
                key.push(pi as u64);
                key.push(qi as u64);
                let v = self.visits.get(&key).copied().unwrap_or(0);
                if best.is_none_or(|(b, _, _)| v < b) {
                    best = Some((v, p, q));
                }
            }
        }
        let (_, p, q) = best.expect("population has at least two agents");
        let mut key: Vec<u64> = counts.to_vec();
        key.push(p.index() as u64);
        key.push(q.index() as u64);
        *self.visits.entry(key).or_insert(0) += 1;
        (p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    fn two_state() -> crate::protocol::CompiledProtocol {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        let _b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.compile().unwrap()
    }

    #[test]
    fn uniform_pair_never_overdraws() {
        let p = two_state();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        let mut pop = CountPopulation::new(&p, 2);
        pop.set_count(a, 1);
        pop.set_count(b, 1);
        let mut sched = UniformRandomScheduler::from_seed(1);
        for _ in 0..200 {
            let (x, y) = sched.select_pair(&pop);
            // With one agent of each state, the pair must be {a, b}.
            assert_ne!(x, y);
        }
    }

    #[test]
    fn uniform_pair_distribution_is_roughly_proportional() {
        let p = two_state();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        let mut pop = CountPopulation::new(&p, 100);
        pop.set_count(a, 75);
        pop.set_count(b, 25);
        let mut sched = UniformRandomScheduler::from_seed(42);
        let trials = 40_000;
        let mut first_a = 0u32;
        for _ in 0..trials {
            let (x, _) = sched.select_pair(&pop);
            if x == a {
                first_a += 1;
            }
        }
        let frac = f64::from(first_a) / f64::from(trials);
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn uniform_agents_distinct() {
        let p = two_state();
        let pop = AgentPopulation::new(&p, 5);
        let mut sched = UniformRandomScheduler::from_seed(3);
        for _ in 0..1000 {
            let (i, j) = sched.select_agents(&pop);
            assert_ne!(i, j);
            assert!(i < 5 && j < 5);
        }
    }

    #[test]
    fn uniform_agents_second_is_uniform_over_others() {
        let p = two_state();
        let pop = AgentPopulation::new(&p, 4);
        let mut sched = UniformRandomScheduler::from_seed(9);
        let mut hits = [0u32; 4];
        let trials = 48_000;
        for _ in 0..trials {
            let (_, j) = sched.select_agents(&pop);
            hits[j] += 1;
        }
        for h in hits {
            let frac = f64::from(h) / f64::from(trials);
            assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        }
    }

    #[test]
    fn round_robin_enumerates_all_ordered_pairs() {
        let p = two_state();
        let pop = AgentPopulation::new(&p, 4);
        let mut sched = RoundRobinScheduler::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..12 {
            seen.insert(sched.select_agents(&pop));
        }
        assert_eq!(seen.len(), 12); // 4 * 3 ordered pairs
                                    // And it cycles.
        let again = sched.select_agents(&pop);
        assert!(seen.contains(&again));
    }

    #[test]
    fn scripted_scheduler_replays_then_falls_back() {
        let p = two_state();
        let a = p.state_by_name("a").unwrap();
        let mut pop = CountPopulation::new(&p, 3);
        pop.set_count(a, 3);
        let mut sched =
            ScriptedPairScheduler::new(vec![(a, a), (a, a)], UniformRandomScheduler::from_seed(5));
        assert_eq!(sched.remaining(), 2);
        assert_eq!(sched.select_pair(&pop), (a, a));
        assert_eq!(sched.select_pair(&pop), (a, a));
        assert_eq!(sched.remaining(), 0);
        let (x, y) = sched.select_pair(&pop); // fallback
        assert_eq!((x, y), (a, a));
    }

    #[test]
    fn least_visited_cycles_through_enabled_pairs() {
        let p = two_state();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        let mut pop = CountPopulation::new(&p, 4);
        pop.set_count(a, 2);
        pop.set_count(b, 2);
        let mut sched = LeastVisitedScheduler::new();
        // With a static configuration, four ordered pairs are enabled;
        // 8 selections must visit each exactly twice.
        let mut hits = std::collections::HashMap::new();
        for _ in 0..8 {
            let pair = sched.select_pair(&pop);
            *hits.entry(pair).or_insert(0) += 1;
        }
        assert_eq!(hits.len(), 4);
        assert!(hits.values().all(|&v| v == 2), "{hits:?}");
    }

    #[test]
    fn greedy_scheduler_picks_max_priority() {
        let p = two_state();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        let mut pop = CountPopulation::new(&p, 4);
        pop.set_count(a, 2);
        pop.set_count(b, 2);
        let mut sched = GreedyPriorityScheduler::new(
            |p: StateId, q: StateId| i64::from(p.0) * 10 + i64::from(q.0),
            0,
        );
        assert_eq!(sched.select_pair(&pop), (b, b));
    }
}
