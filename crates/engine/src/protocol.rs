//! Compiled protocols: dense transition tables with precomputed masks.
//!
//! A population protocol is a pair `(Q, δ)` together with a designated
//! initial state and an output map `f : Q → {1..k}`. This module stores `δ`
//! as a dense `|Q| × |Q|` table of ordered-pair results, which makes a
//! single interaction an O(1) lookup and lets us precompute, for every
//! ordered pair, whether the transition is an *identity* (changes neither
//! state) and whether it is *group-changing* (changes `f` of at least one
//! participant). Those masks power the O(1)-amortised stability checks in
//! [`crate::stability`].

use std::fmt;

/// Index of a state in a compiled protocol's state set `Q`.
///
/// States are small (`3k − 2` for the paper's protocol), so a `u16` is
/// ample; keeping the index narrow keeps transition-table rows cache-dense.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u16);

impl StateId {
    /// The state index as a `usize`, for table lookups.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A group label in `{1, .., k}`, the codomain of the output map `f`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GroupId(pub u16);

/// Identity of a *labelled* rule in a compiled protocol.
///
/// Rule ids are assigned in label-first-seen order at compile time; every
/// ordered pair registered under the same label (e.g. both orders of a
/// symmetric rule) maps back to one id. Unlabelled rules and identity
/// pairs have no rule id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u16);

impl RuleId {
    /// Sentinel raw value marking "no rule" in the dense per-pair table.
    pub(crate) const NONE_RAW: u16 = u16::MAX;

    /// The rule index as a `usize`, for table lookups.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

impl GroupId {
    /// The group as a 1-based number, matching the paper's notation.
    #[inline(always)]
    pub fn number(self) -> usize {
        self.0 as usize
    }
}

/// Errors detected while validating a protocol description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// No initial state was designated.
    MissingInitialState,
    /// The protocol has no states at all.
    EmptyStateSet,
    /// Two rules were given for the same ordered pair with different results.
    ConflictingRule {
        /// First state of the ordered pair.
        p: StateId,
        /// Second state of the ordered pair.
        q: StateId,
    },
    /// A rule references a state id outside the state set.
    StateOutOfRange(StateId),
    /// A symmetric-protocol check failed: `δ(p, p) = (p', q')` with `p' ≠ q'`.
    AsymmetricTransition {
        /// The state interacting with itself.
        p: StateId,
    },
    /// A group label of 0 was used (groups are 1-based, as in the paper).
    ZeroGroup(StateId),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MissingInitialState => write!(f, "no designated initial state"),
            ProtocolError::EmptyStateSet => write!(f, "protocol has no states"),
            ProtocolError::ConflictingRule { p, q } => {
                write!(f, "conflicting transition rules for pair ({p:?}, {q:?})")
            }
            ProtocolError::StateOutOfRange(s) => write!(f, "state {s:?} out of range"),
            ProtocolError::AsymmetricTransition { p } => {
                write!(f, "asymmetric transition on pair ({p:?}, {p:?})")
            }
            ProtocolError::ZeroGroup(s) => {
                write!(f, "state {s:?} mapped to group 0 (groups are 1-based)")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One non-identity entry of the compiled rule table: the ordered pair,
/// its result, and the labelled rule covering it (if any). Produced by
/// [`CompiledProtocol::rule_entries`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleEntry {
    /// First state of the ordered pair.
    pub p: StateId,
    /// Second state of the ordered pair.
    pub q: StateId,
    /// Result for the first agent.
    pub p2: StateId,
    /// Result for the second agent.
    pub q2: StateId,
    /// The labelled rule covering this pair, if any.
    pub rule: Option<RuleId>,
}

/// A fully validated, dense-table population protocol.
///
/// Construct via [`crate::spec::ProtocolSpec::compile`]. The table stores
/// the result of `δ(p, q)` for every *ordered* pair `(p, q)`; pairs for
/// which no rule was declared default to the identity `(p, q)`, matching
/// the convention of the paper (unlisted interactions are null).
pub struct CompiledProtocol {
    name: String,
    state_names: Vec<String>,
    groups: Vec<GroupId>,
    num_groups: usize,
    initial: StateId,
    /// Row-major `|Q| × |Q|` table of ordered-pair results.
    table: Vec<(StateId, StateId)>,
    /// `identity[p * S + q]` is true iff `δ(p, q) = (p, q)`.
    identity: Vec<bool>,
    /// Column-major transpose of `identity`: `identity_t[q * S + p]` is
    /// true iff `δ(p, q) = (p, q)`. Kept so the leap kernel can walk a
    /// *column* of the mask as a contiguous slice.
    identity_t: Vec<bool>,
    /// `group_changing[p * S + q]` is true iff `δ(p, q)` changes `f` of
    /// either participant.
    group_changing: Vec<bool>,
    /// `rule_table[p * S + q]` is the raw [`RuleId`] of the labelled rule
    /// covering the pair, or [`RuleId::NONE_RAW`] if none.
    rule_table: Vec<u16>,
    /// Rule labels, indexed by [`RuleId`].
    rule_names: Vec<String>,
    symmetric: bool,
}

impl CompiledProtocol {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        state_names: Vec<String>,
        groups: Vec<GroupId>,
        initial: StateId,
        table: Vec<(StateId, StateId)>,
        rule_table: Vec<u16>,
        rule_names: Vec<String>,
    ) -> Result<Self, ProtocolError> {
        let s = state_names.len();
        if s == 0 {
            return Err(ProtocolError::EmptyStateSet);
        }
        if initial.index() >= s {
            return Err(ProtocolError::StateOutOfRange(initial));
        }
        debug_assert_eq!(table.len(), s * s);
        debug_assert_eq!(rule_table.len(), s * s);
        for (g, id) in groups.iter().zip(0u16..) {
            if g.0 == 0 {
                return Err(ProtocolError::ZeroGroup(StateId(id)));
            }
        }
        let num_groups = groups.iter().map(|g| g.number()).max().unwrap_or(0);
        let mut identity = vec![false; s * s];
        let mut identity_t = vec![false; s * s];
        let mut group_changing = vec![false; s * s];
        let mut symmetric = true;
        for p in 0..s {
            for q in 0..s {
                let (p2, q2) = table[p * s + q];
                if p2.index() >= s {
                    return Err(ProtocolError::StateOutOfRange(p2));
                }
                if q2.index() >= s {
                    return Err(ProtocolError::StateOutOfRange(q2));
                }
                let id = p2.index() == p && q2.index() == q;
                identity[p * s + q] = id;
                identity_t[q * s + p] = id;
                group_changing[p * s + q] =
                    groups[p2.index()] != groups[p] || groups[q2.index()] != groups[q];
                if p == q && p2 != q2 {
                    symmetric = false;
                }
            }
        }
        Ok(CompiledProtocol {
            name,
            state_names,
            groups,
            num_groups,
            initial,
            table,
            identity,
            identity_t,
            group_changing,
            rule_table,
            rule_names,
            symmetric,
        })
    }

    /// Human-readable protocol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states `|Q|`.
    #[inline(always)]
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Largest group number used by the output map (the `k` of k-partition).
    #[inline(always)]
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The designated initial state `s0`.
    #[inline(always)]
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Name of state `s`.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.index()]
    }

    /// Look up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId(i as u16))
    }

    /// The output map `f`: group of state `s`.
    #[inline(always)]
    pub fn group_of(&self, s: StateId) -> GroupId {
        self.groups[s.index()]
    }

    /// The transition function `δ` on the ordered pair `(p, q)`.
    #[inline(always)]
    pub fn delta(&self, p: StateId, q: StateId) -> (StateId, StateId) {
        self.table[p.index() * self.num_states() + q.index()]
    }

    /// Whether `δ(p, q)` is the identity (a *null* interaction).
    #[inline(always)]
    pub fn is_identity(&self, p: StateId, q: StateId) -> bool {
        self.identity[p.index() * self.num_states() + q.index()]
    }

    /// Row `p` of the identity mask as a contiguous slice:
    /// `identity_row(p)[q] == is_identity(p, q)` for every `q`.
    #[inline(always)]
    pub fn identity_row(&self, p: StateId) -> &[bool] {
        let s = self.num_states();
        &self.identity[p.index() * s..(p.index() + 1) * s]
    }

    /// Column `q` of the identity mask as a contiguous slice:
    /// `identity_col(q)[p] == is_identity(p, q)` for every `p`.
    #[inline(always)]
    pub fn identity_col(&self, q: StateId) -> &[bool] {
        let s = self.num_states();
        &self.identity_t[q.index() * s..(q.index() + 1) * s]
    }

    /// Whether `δ(p, q)` changes the group (under `f`) of either agent.
    #[inline(always)]
    pub fn is_group_changing(&self, p: StateId, q: StateId) -> bool {
        self.group_changing[p.index() * self.num_states() + q.index()]
    }

    /// Number of distinct *labelled* rules (see [`RuleId`]).
    #[inline(always)]
    pub fn num_rules(&self) -> usize {
        self.rule_names.len()
    }

    /// The labelled rule covering `δ(p, q)`, if any. Identity pairs and
    /// pairs registered without a label return `None`.
    #[inline(always)]
    pub fn rule_of(&self, p: StateId, q: StateId) -> Option<RuleId> {
        let raw = self.rule_table[p.index() * self.num_states() + q.index()];
        (raw != RuleId::NONE_RAW).then_some(RuleId(raw))
    }

    /// Label of rule `r` (e.g. `"r5"`).
    pub fn rule_name(&self, r: RuleId) -> &str {
        &self.rule_names[r.index()]
    }

    /// Look up a rule id by its label.
    pub fn rule_by_name(&self, label: &str) -> Option<RuleId> {
        self.rule_names
            .iter()
            .position(|n| n == label)
            .map(|i| RuleId(i as u16))
    }

    /// All rule labels, indexed by [`RuleId`].
    pub fn rule_names(&self) -> &[String] {
        &self.rule_names
    }

    /// Whether every transition is symmetric: `δ(p, p) = (p', p')`.
    ///
    /// Symmetric protocols cannot break the symmetry of two identical
    /// agents in one interaction; the paper restricts itself to this class.
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Iterator over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.num_states() as u16).map(StateId)
    }

    /// All ordered pairs `(p, q)` whose transition is *not* the identity,
    /// with their results. Useful for debugging and for the model checker.
    pub fn non_identity_rules(&self) -> Vec<(StateId, StateId, StateId, StateId)> {
        self.rule_entries()
            .map(|e| (e.p, e.q, e.p2, e.q2))
            .collect()
    }

    /// Iterator over the non-identity ordered pairs together with their
    /// results and (optional) labelled rule ids — the rule table in the
    /// form static analyzers consume (row-major pair order, so the output
    /// is deterministic for a given protocol).
    pub fn rule_entries(&self) -> impl Iterator<Item = RuleEntry> + '_ {
        self.states().flat_map(move |p| {
            self.states().filter_map(move |q| {
                if self.is_identity(p, q) {
                    return None;
                }
                let (p2, q2) = self.delta(p, q);
                Some(RuleEntry {
                    p,
                    q,
                    p2,
                    q2,
                    rule: self.rule_of(p, q),
                })
            })
        })
    }

    /// The net state-count displacement of `δ(p, q)` as a dense integer
    /// vector over `Q`: applying the transition to a configuration adds
    /// `displacement(p, q)[s]` to the count of each state `s`. Identity
    /// pairs (and e.g. swaps) yield the zero vector. This is one column
    /// of the displacement matrix whose integer left-nullspace is the
    /// protocol's space of linear (P-)invariants.
    pub fn displacement(&self, p: StateId, q: StateId) -> Vec<i64> {
        let mut d = vec![0i64; self.num_states()];
        let (p2, q2) = self.delta(p, q);
        d[p.index()] -= 1;
        d[q.index()] -= 1;
        d[p2.index()] += 1;
        d[q2.index()] += 1;
        d
    }

    /// Render the non-identity rules as `(p, q) -> (p', q')` lines.
    pub fn rules_pretty(&self) -> String {
        let mut s = String::new();
        for (p, q, p2, q2) in self.non_identity_rules() {
            s.push_str(&format!(
                "({}, {}) -> ({}, {})\n",
                self.state_name(p),
                self.state_name(q),
                self.state_name(p2),
                self.state_name(q2)
            ));
        }
        s
    }
}

impl fmt::Debug for CompiledProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProtocol")
            .field("name", &self.name)
            .field("num_states", &self.num_states())
            .field("num_groups", &self.num_groups)
            .field("symmetric", &self.symmetric)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    fn toy() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("toy");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.compile().unwrap()
    }

    #[test]
    fn delta_defaults_to_identity() {
        let p = toy();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        assert_eq!(p.delta(a, b), (a, b));
        assert!(p.is_identity(a, b));
        assert!(!p.is_identity(a, a));
    }

    #[test]
    fn group_changing_mask() {
        let p = toy();
        let a = p.state_by_name("a").unwrap();
        let b = p.state_by_name("b").unwrap();
        assert!(p.is_group_changing(a, a)); // both move group 1 -> 2
        assert!(!p.is_group_changing(b, b));
        assert!(!p.is_group_changing(a, b));
    }

    #[test]
    fn symmetric_detection() {
        let p = toy();
        assert!(p.is_symmetric());

        let mut spec = ProtocolSpec::new("asym");
        let l = spec.add_state("L", 1);
        let f = spec.add_state("F", 1);
        spec.set_initial(l);
        spec.add_rule(l, l, l, f); // classic leader election: asymmetric
        let p = spec.compile().unwrap();
        assert!(!p.is_symmetric());
    }

    #[test]
    fn state_lookup_and_names() {
        let p = toy();
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.num_groups(), 2);
        assert_eq!(p.state_name(StateId(0)), "a");
        assert_eq!(p.state_by_name("nope"), None);
    }

    #[test]
    fn non_identity_rules_listing() {
        let p = toy();
        let rules = p.non_identity_rules();
        assert_eq!(rules.len(), 1);
        let (pp, qq, p2, q2) = rules[0];
        assert_eq!(pp, StateId(0));
        assert_eq!(qq, StateId(0));
        assert_eq!(p2, StateId(1));
        assert_eq!(q2, StateId(1));
        assert!(p.rules_pretty().contains("(a, a) -> (b, b)"));
    }

    #[test]
    fn zero_group_rejected() {
        let mut spec = ProtocolSpec::new("bad");
        let a = spec.add_state_raw("a", 0);
        spec.set_initial(a);
        assert!(matches!(spec.compile(), Err(ProtocolError::ZeroGroup(_))));
    }
}
