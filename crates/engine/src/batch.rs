//! The tau-leap **batch kernel**: whole batches of rule firings per step.
//!
//! ## Propensity model
//!
//! Under the uniform random scheduler each interaction draws an ordered
//! pair of distinct agents uniformly from the `T = n(n−1)` possibilities.
//! Every ordered state pair `(p, q)` whose transition is not the identity
//! is a *channel* `i` with weight
//!
//! ```text
//! w_i(c) = c_p · (c_q − [p = q])
//! ```
//!
//! so a single interaction fires channel `i` with probability `w_i / T`
//! and is an identity with probability `W_id / T`, where
//! `Σ_i w_i = W_eff = T − W_id` exactly (the channels partition the
//! non-identity pairs). **Freezing the propensities** over a horizon of
//! `tau` interactions, the number of effective firings is
//! `F ~ Binomial(tau, W_eff / T)` and the per-channel counts are the
//! multinomial split of `F` proportional to `w_i` — sampled here by
//! binomial splitting, one [`sample_binomial`] draw per enabled channel.
//! One leap therefore costs O(|channels|) regardless of how many of the
//! `tau` interactions it covers, against the leap kernel's one sampling
//! step per *effective* interaction.
//!
//! ## Error bound (the tau-leap approximation, clearly labelled)
//!
//! The *only* approximation is the propensity freeze: real propensities
//! drift as counts change inside the leap. The horizon is chosen with the
//! standard Cao–Gillespie–Petzold bound — `tau` small enough that every
//! reactant state's expected count change and its standard deviation stay
//! within `max(ε · c_s, 1)`:
//!
//! ```text
//! tau ≤ min_s  max(ε c_s, 1) · T / |μ_s|,   max(ε c_s, 1)² · T / σ²_s
//! μ_s  = Σ_i d_{i,s} · w_i        (net drift of state s per interaction · T)
//! σ²_s = Σ_i d²_{i,s} · w_i
//! ```
//!
//! so relative propensity drift per leap is O(ε). Two further bounded
//! approximations: the binomial sampler switches to a normal
//! approximation above mean ≈ 32 (error exponentially small in the
//! mean), and firings inside one leap are unordered (observers see
//! leap-granular, not interaction-granular, trajectories — see
//! [`Observer::on_leap_batch`]). Statistics of the *stabilised* outcome
//! are protected by the fallback policy below; distribution tests in
//! `tests/batch_kernel.rs` bound the residual error empirically.
//!
//! ## Fallback policy (terminal behaviour is exact)
//!
//! Before each leap the kernel re-checks eligibility and hands control to
//! the **exact leap kernel** (the same geometric-skip + conditional-pair
//! code path as [`crate::simulator::Simulator::run_leap`], bit-for-bit)
//! for a burst of [`BatchConfig::exact_burst`] composite steps when:
//!
//! * **near convergence** — the stability tracker's
//!   [`StabilityTracker::violations_hint`] is at most
//!   [`BatchConfig::near_convergence_violations`]: the endgame that
//!   decides the paper's §5 metric is simulated exactly;
//! * **low counts** — channels whose reactant counts are at or below
//!   [`BatchConfig::safety_threshold`] carry enough propensity that a
//!   leap of useful size would likely fire them (`tau` is capped so the
//!   *expected* number of low-count firings per leap stays below one;
//!   when that cap squeezes the leap under [`BatchConfig::min_batch`]
//!   expected firings, the kernel steps exactly instead) — low-count
//!   species are where tau-leaping's error concentrates;
//! * **small leap** — the ε bound itself yields fewer than
//!   [`BatchConfig::min_batch`] expected firings: exact stepping is
//!   cheaper than a degenerate multinomial;
//! * **overdraw** — [`BatchConfig::max_retries`] tau-halvings could not
//!   produce a draw keeping every count non-negative.
//!
//! Eligibility checks consume **no randomness**, so a configuration that
//! always falls back (e.g. `safety_threshold = n`) makes `run_batch`
//! consume the RNG identically to `run_leap` — the bit-identity contract
//! `tests/batch_kernel.rs` pins down.

use crate::leap::{sample_identity_run, IdentityWeights};
use crate::observer::{FallbackReason, Observer};
use crate::protocol::{CompiledProtocol, StateId};
use crate::stability::{StabilityCriterion, StabilityTracker};
use rand::rngs::SmallRng;
use rand::RngCore;

/// Tuning knobs of the batch kernel. The defaults are deliberately
/// conservative; `safety_threshold = n` turns the kernel into a
/// bit-identical replica of the leap kernel (every step falls back).
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Relative propensity-drift bound ε per leap (Cao-style tau
    /// selection): expected count change of any reactant state inside one
    /// leap stays within `max(ε · c_s, 1)`.
    pub epsilon: f64,
    /// Reactant counts at or below this are *low*: leaps are capped so
    /// low-count channels are not expected to fire inside them.
    pub safety_threshold: u64,
    /// Minimum expected effective firings for a leap to be worth taking;
    /// below it the kernel steps exactly.
    pub min_batch: u64,
    /// Number of exact composite steps per fallback burst before
    /// eligibility is re-evaluated.
    pub exact_burst: u64,
    /// Fall back for good-measure exactness once the stability tracker
    /// reports at most this many violated constraints.
    pub near_convergence_violations: u64,
    /// Tau-halving retries when a drawn leap would push a count negative.
    pub max_retries: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            epsilon: 0.05,
            safety_threshold: 16,
            min_batch: 16,
            exact_burst: 64,
            near_convergence_violations: 3,
            max_retries: 3,
        }
    }
}

/// One non-identity ordered state pair, with its net count effect.
#[derive(Clone, Debug)]
struct Channel {
    p: usize,
    q: usize,
    /// Net per-firing count deltas, pre-combined over `(p, −1)`, `(q, −1)`,
    /// `(p2, +1)`, `(q2, +1)` (at most 4 distinct states, zeros dropped).
    deltas: Vec<(usize, i64)>,
}

/// The compiled rule set of the batch kernel: one [`Channel`] per
/// non-identity ordered state pair. Shared read-only across trials (the
/// fleet runner compiles it once per cell).
#[derive(Clone, Debug)]
pub struct BatchCore {
    channels: Vec<Channel>,
    num_states: usize,
}

impl BatchCore {
    /// Compile the channel set of `proto`.
    pub fn compile(proto: &CompiledProtocol) -> Self {
        let channels = proto
            .non_identity_rules()
            .into_iter()
            .map(|(p, q, p2, q2)| {
                let mut deltas: Vec<(usize, i64)> = Vec::with_capacity(4);
                for (s, d) in [
                    (p.index(), -1i64),
                    (q.index(), -1),
                    (p2.index(), 1),
                    (q2.index(), 1),
                ] {
                    match deltas.iter_mut().find(|(t, _)| *t == s) {
                        Some((_, acc)) => *acc += d,
                        None => deltas.push((s, d)),
                    }
                }
                deltas.retain(|&(_, d)| d != 0);
                Channel {
                    p: p.index(),
                    q: q.index(),
                    deltas,
                }
            })
            .collect();
        BatchCore {
            channels,
            num_states: proto.num_states(),
        }
    }

    /// Number of channels (non-identity ordered state pairs).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }
}

/// Reusable per-step workspace, fully reinitialised by every leap
/// attempt; shared across a fleet's trials so the hot loop allocates
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// Per-channel weight `w_i` for the current configuration.
    weights: Vec<u64>,
    /// Per-state net count delta of the drawn leap.
    deltas: Vec<i64>,
    /// Per-state drift `μ_s` and variance `σ²_s` accumulators.
    mu: Vec<f64>,
    sigma2: Vec<f64>,
}

impl Scratch {
    /// Workspace sized for `core`.
    pub fn new(core: &BatchCore) -> Self {
        Scratch {
            weights: vec![0; core.channels.len()],
            deltas: vec![0; core.num_states],
            mu: vec![0.0; core.num_states],
            sigma2: vec![0.0; core.num_states],
        }
    }
}

/// Outcome of one [`BatchTrial::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The run continues.
    Continue,
    /// The configuration is stable; the trial is finished.
    Stable,
    /// The interaction budget is exhausted (or the configuration is
    /// frozen); the trial is censored.
    Limit,
}

/// Per-trial state of one batch-kernel run: the identity-weight algebra,
/// the incremental stability tracker, the interaction counters, and the
/// exact-burst countdown. [`crate::simulator::Simulator::run_batch`]
/// drives one; [`crate::fleet`] drives hundreds in lockstep over a shared
/// [`BatchCore`] and [`Scratch`].
pub struct BatchTrial<'a> {
    weights: IdentityWeights,
    tracker: Box<dyn StabilityTracker + 'a>,
    /// Cumulative interactions (identities included), the paper's metric.
    pub interactions: u64,
    /// Cumulative effective (state-changing) interactions.
    pub effective: u64,
    /// Remaining exact composite steps in the current fallback burst.
    exact_left: u64,
}

impl<'a> BatchTrial<'a> {
    /// Trial state for configuration `counts` under `criterion`.
    ///
    /// The caller has already checked that `counts` is not initially
    /// stable and that `n ≥ 2` (as [`crate::simulator::Simulator`] does).
    pub fn new<C: StabilityCriterion>(
        proto: &CompiledProtocol,
        criterion: &'a C,
        counts: &[u64],
    ) -> Self {
        BatchTrial {
            weights: IdentityWeights::new(proto, counts),
            tracker: criterion.tracker(proto, counts),
            interactions: 0,
            effective: 0,
            exact_left: 0,
        }
    }

    /// Advance the trial by one step: either one tau-leap or one exact
    /// composite step (identity run + one effective interaction),
    /// depending on eligibility.
    #[allow(clippy::too_many_arguments)]
    pub fn step<O: Observer>(
        &mut self,
        proto: &CompiledProtocol,
        core: &BatchCore,
        counts: &mut [u64],
        n: u64,
        rng: &mut SmallRng,
        max_interactions: u64,
        cfg: &BatchConfig,
        scratch: &mut Scratch,
        observer: &mut O,
    ) -> StepOutcome {
        let total = n * (n - 1);
        if self.exact_left == 0 {
            match self.try_leap(
                proto,
                core,
                counts,
                rng,
                total,
                max_interactions,
                cfg,
                scratch,
                observer,
            ) {
                LeapOutcome::Done(out) => return out,
                LeapOutcome::Fallback(reason) => {
                    observer.on_batch_fallback(reason);
                    self.exact_left = cfg.exact_burst.max(1);
                }
            }
        }
        self.exact_left -= 1;
        self.exact_step(proto, counts, n, total, rng, max_interactions, observer)
    }

    /// One exact composite step — a verbatim replica of the
    /// [`crate::simulator::Simulator::run_leap_observed`] loop body, so
    /// the RNG consumption, counters, and observer events are
    /// bit-identical to the leap kernel's.
    #[allow(clippy::too_many_arguments)]
    fn exact_step<O: Observer>(
        &mut self,
        proto: &CompiledProtocol,
        counts: &mut [u64],
        n: u64,
        total: u64,
        rng: &mut SmallRng,
        max_interactions: u64,
        observer: &mut O,
    ) -> StepOutcome {
        let w_id = self.weights.identity_weight();
        if w_id == total {
            // Every enabled pair is an identity: frozen configuration.
            return StepOutcome::Limit;
        }
        let g = sample_identity_run(rng, w_id, total);
        if g >= max_interactions - self.interactions {
            return StepOutcome::Limit;
        }
        if g > 0 {
            self.interactions += g;
            observer.on_identity_run(self.interactions, g, counts);
        }
        let (p, q) = self.weights.sample_effective(proto, n, counts, rng);
        let (p2, q2) = proto.delta(p, q);
        self.interactions += 1;
        self.effective += 1;
        for (s, delta) in [(p, -1), (q, -1), (p2, 1), (q2, 1)] {
            self.weights.apply_delta(proto, s, delta);
            self.tracker.apply_delta(s, delta);
        }
        counts[p.index()] -= 1;
        counts[q.index()] -= 1;
        counts[p2.index()] += 1;
        counts[q2.index()] += 1;
        observer.on_interaction(self.interactions, p, q, p2, q2, counts);
        if self.tracker.is_stable(proto, counts) {
            StepOutcome::Stable
        } else {
            StepOutcome::Continue
        }
    }

    /// Attempt one tau-leap. Consumes randomness only once eligibility is
    /// established — a fallback decision is RNG-free.
    #[allow(clippy::too_many_arguments)]
    fn try_leap<O: Observer>(
        &mut self,
        proto: &CompiledProtocol,
        core: &BatchCore,
        counts: &mut [u64],
        rng: &mut SmallRng,
        total: u64,
        max_interactions: u64,
        cfg: &BatchConfig,
        scratch: &mut Scratch,
        observer: &mut O,
    ) -> LeapOutcome {
        // Terminal exactness first: close to stability, hand over.
        if let Some(v) = self.tracker.violations_hint() {
            if v <= cfg.near_convergence_violations {
                return LeapOutcome::Fallback(FallbackReason::NearConvergence);
            }
        }

        // Channel weights for the frozen configuration.
        let mut w_eff: u64 = 0;
        let mut w_low: u64 = 0;
        for (i, ch) in core.channels.iter().enumerate() {
            let cp = counts[ch.p];
            let cq = counts[ch.q];
            // w_i = c_p · (c_q − [p = q]): a self-pair needs two agents.
            let w = if ch.p == ch.q {
                cp * cp.saturating_sub(1)
            } else {
                cp * cq
            };
            scratch.weights[i] = w;
            w_eff += w;
            if w > 0 && (cp <= cfg.safety_threshold || cq <= cfg.safety_threshold) {
                w_low += w;
            }
        }
        debug_assert_eq!(w_eff, total - self.weights.identity_weight());
        if w_eff == 0 {
            // Frozen configuration — same verdict run_leap reaches via its
            // w_id == total check, with no randomness drawn.
            return LeapOutcome::Done(StepOutcome::Limit);
        }

        // Cao-style tau selection over reactant states.
        let total_f = total as f64;
        let w_eff_f = w_eff as f64;
        scratch.mu.iter_mut().for_each(|x| *x = 0.0);
        scratch.sigma2.iter_mut().for_each(|x| *x = 0.0);
        for (i, ch) in core.channels.iter().enumerate() {
            let w = scratch.weights[i] as f64;
            if w == 0.0 {
                continue;
            }
            for &(s, d) in &ch.deltas {
                let d = d as f64;
                scratch.mu[s] += d * w;
                scratch.sigma2[s] += d * d * w;
            }
        }
        let remaining = max_interactions - self.interactions;
        let mut tau = remaining as f64;
        for (i, ch) in core.channels.iter().enumerate() {
            if scratch.weights[i] == 0 {
                continue;
            }
            for s in [ch.p, ch.q] {
                let bound = (cfg.epsilon * counts[s] as f64).max(1.0);
                let mu = scratch.mu[s];
                if mu != 0.0 {
                    tau = tau.min(bound * total_f / mu.abs());
                }
                let s2 = scratch.sigma2[s];
                if s2 > 0.0 {
                    tau = tau.min(bound * bound * total_f / s2);
                }
            }
        }
        if tau * w_eff_f / total_f < cfg.min_batch as f64 {
            return LeapOutcome::Fallback(FallbackReason::SmallLeap);
        }
        if w_low > 0 {
            // Cap so low-count channels are not *expected* to fire within
            // the leap (hybrid tau-leap/exact partitioning).
            let tau_low = total_f / w_low as f64;
            if tau_low * w_eff_f / total_f < cfg.min_batch as f64 {
                return LeapOutcome::Fallback(FallbackReason::LowCount);
            }
            tau = tau.min(tau_low);
        }
        let mut tau = (tau.floor() as u64).clamp(1, remaining);

        // Draw the leap, halving tau when a draw would overdraw a state.
        for attempt in 0..=cfg.max_retries {
            let f = sample_binomial(rng, tau, w_eff_f / total_f);
            // Binomial splitting of the multinomial over channels.
            scratch.deltas.iter_mut().for_each(|d| *d = 0);
            let mut left_f = f;
            let mut left_w = w_eff;
            for (i, ch) in core.channels.iter().enumerate() {
                if left_f == 0 {
                    break;
                }
                let w = scratch.weights[i];
                if w == 0 {
                    continue;
                }
                let fi = if w == left_w {
                    left_f
                } else {
                    sample_binomial(rng, left_f, w as f64 / left_w as f64)
                };
                left_f -= fi;
                left_w -= w;
                if fi > 0 {
                    for &(s, d) in &ch.deltas {
                        scratch.deltas[s] += d * fi as i64;
                    }
                }
                if left_w == 0 {
                    break;
                }
            }
            let overdraw = scratch
                .deltas
                .iter()
                .enumerate()
                .any(|(s, &d)| (counts[s] as i128) + i128::from(d) < 0);
            if overdraw {
                if attempt == cfg.max_retries {
                    return LeapOutcome::Fallback(FallbackReason::Overdraw);
                }
                tau = (tau / 2).max(1);
                continue;
            }

            // Commit the leap: counts, tracker, identity weights, counters.
            for (s, &d) in scratch.deltas.iter().enumerate() {
                if d != 0 {
                    counts[s] = ((counts[s] as i128) + i128::from(d)) as u64;
                    self.tracker.apply_delta(StateId(s as u16), d);
                }
            }
            self.weights = IdentityWeights::new(proto, counts);
            self.interactions += tau;
            self.effective += f;
            observer.on_leap_batch(self.interactions, tau, f, counts);
            if self.tracker.is_stable(proto, counts) {
                return LeapOutcome::Done(StepOutcome::Stable);
            }
            if self.interactions >= max_interactions {
                return LeapOutcome::Done(StepOutcome::Limit);
            }
            return LeapOutcome::Done(StepOutcome::Continue);
        }
        unreachable!("overdraw loop returns on its last attempt");
    }
}

/// Internal verdict of a leap attempt.
enum LeapOutcome {
    /// A leap (or a terminal verdict) happened; the step is over.
    Done(StepOutcome),
    /// No leap: fall back to exact stepping for a burst.
    Fallback(FallbackReason),
}

/// A uniform deviate in `[0, 1)` from the top 53 bits of one `u64`.
#[inline]
fn uniform53(rng: &mut SmallRng) -> f64 {
    ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
}

/// A standard normal deviate via Box–Muller (two uniforms per call; the
/// second Box–Muller root is discarded to keep the draw-count per call
/// fixed, which the fleet's determinism relies on).
#[inline]
fn sample_std_normal(rng: &mut SmallRng) -> f64 {
    // First uniform shifted into (0, 1] so the logarithm is finite.
    let u1 = (((rng.next_u64() >> 11) + 1) as f64) / ((1u64 << 53) as f64);
    let u2 = uniform53(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw `Binomial(t, p)`.
///
/// Exact CDF-inversion walk while the rarer-outcome mean is below ~32
/// (one uniform, expected O(mean) iterations); above that, the normal
/// approximation with continuity correction, clamped to `[0, t]` — a
/// bounded-error regime whose deviation from the exact law is
/// exponentially small in the mean (see the module docs' error model).
pub fn sample_binomial(rng: &mut SmallRng, t: u64, p: f64) -> u64 {
    if t == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return t;
    }
    // Sample the rarer outcome for numerical stability.
    if p > 0.5 {
        return t - sample_binomial_small_p(rng, t, 1.0 - p);
    }
    sample_binomial_small_p(rng, t, p)
}

/// `Binomial(t, p)` for `p ≤ 0.5`.
fn sample_binomial_small_p(rng: &mut SmallRng, t: u64, p: f64) -> u64 {
    let mean = t as f64 * p;
    if mean < 32.0 {
        // Inversion: walk the CDF from k = 0. `pdf` underflow is
        // impossible here (|t · ln(1 − p)| ≤ 2 · mean < 64).
        let tf = t as f64;
        let r = p / (1.0 - p);
        let mut pdf = (tf * (1.0 - p).ln()).exp();
        let mut cdf = pdf;
        let u = uniform53(rng);
        let mut k: u64 = 0;
        // The walk is capped ~40σ past the mean: P(overshoot) is far
        // below 2⁻⁵³, so the cap only guards degenerate float states.
        let cap = (mean + 40.0 * (mean + 1.0).sqrt()).ceil() as u64;
        while u > cdf && k < t && k <= cap {
            k += 1;
            pdf *= ((t - k + 1) as f64 / k as f64) * r;
            cdf += pdf;
        }
        k.min(t)
    } else {
        // Normal approximation with continuity correction (labelled
        // bounded-error; mean ≥ 32 keeps the tails negligible).
        let sd = (t as f64 * p * (1.0 - p)).sqrt();
        let x = mean + sd * sample_std_normal(rng) + 0.5;
        if x <= 0.0 {
            0
        } else if x >= t as f64 {
            t
        } else {
            x as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use crate::population::{CountPopulation, Population};
    use crate::scheduler::UniformRandomScheduler;
    use crate::simulator::Simulator;
    use crate::spec::ProtocolSpec;
    use crate::stability::Silent;
    use rand::SeedableRng;

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn binomial_moments_small_mean() {
        let mut rng = SmallRng::seed_from_u64(42);
        let (t, p) = (100u64, 0.05);
        let trials = 50_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| sample_binomial(&mut rng, t, p) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
        // Exact regime: mean 5, var 4.75.
        assert!((mean - 5.0).abs() < 0.06, "mean = {mean}");
        assert!((var - 4.75).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn binomial_moments_normal_regime() {
        let mut rng = SmallRng::seed_from_u64(43);
        let (t, p) = (1_000_000u64, 0.25);
        let trials = 20_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| sample_binomial(&mut rng, t, p) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
        // Normal-approximation regime: mean 250 000, var 187 500.
        assert!((mean - 250_000.0).abs() < 20.0, "mean = {mean}");
        assert!((var / 187_500.0 - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn binomial_symmetry_flip_and_edges() {
        let mut rng = SmallRng::seed_from_u64(44);
        assert_eq!(sample_binomial(&mut rng, 0, 0.3), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..1000 {
            let x = sample_binomial(&mut rng, 7, 0.9);
            assert!(x <= 7);
        }
        // p close to 1 has mean close to t.
        let trials = 20_000;
        let sum: u64 = (0..trials)
            .map(|_| sample_binomial(&mut rng, 50, 0.98))
            .sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 49.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn batch_core_channels_cover_non_identity_pairs() {
        let proto = epidemic();
        let core = BatchCore::compile(&proto);
        // Epidemic: (I, S) and (S, I) are the only non-identity pairs.
        assert_eq!(core.num_channels(), 2);
        // Net deltas: S −1, I +1 for both orderings.
        for ch in &core.channels {
            let mut d = ch.deltas.clone();
            d.sort();
            assert_eq!(d, vec![(0, -1), (1, 1)]);
        }
    }

    #[test]
    fn batch_epidemic_stabilises_everyone_infected() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 4096);
        pop.set_count(s, 4095);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(11);
        let res = Simulator::new(&proto)
            .run_batch(&mut pop, &mut sched, &Silent, u64::MAX)
            .unwrap();
        assert_eq!(pop.count(i), 4096);
        // Effective interactions are exactly the n − 1 infections on every
        // path, whether fired in bulk or exactly.
        assert_eq!(res.effective_interactions, 4095);
        assert!(res.interactions >= 4095);
    }

    #[test]
    fn batch_takes_leaps_on_large_populations() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 100_000);
        pop.set_count(s, 99_999);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(7);
        struct LeapCounter {
            batches: u64,
            fallbacks: u64,
        }
        impl Observer for LeapCounter {
            fn on_interaction(
                &mut self,
                _s: u64,
                _p: StateId,
                _q: StateId,
                _p2: StateId,
                _q2: StateId,
                _c: &[u64],
            ) {
            }
            fn on_leap_batch(&mut self, _l: u64, tau: u64, _e: u64, _c: &[u64]) {
                assert!(tau >= 1);
                self.batches += 1;
            }
            fn on_batch_fallback(&mut self, _r: FallbackReason) {
                self.fallbacks += 1;
            }
        }
        let mut obs = LeapCounter {
            batches: 0,
            fallbacks: 0,
        };
        let res = Simulator::new(&proto)
            .run_batch_observed(&mut pop, &mut sched, &Silent, u64::MAX, &mut obs)
            .unwrap();
        assert_eq!(pop.count(i), 100_000);
        assert_eq!(res.effective_interactions, 99_999);
        // The mid-run regime must actually engage the leap path, and the
        // endgame must have handed back to exact stepping at least once.
        assert!(obs.batches > 10, "batches = {}", obs.batches);
        assert!(obs.fallbacks >= 1, "fallbacks = {}", obs.fallbacks);
    }

    #[test]
    fn batch_full_fallback_matches_leap_bitwise() {
        // safety_threshold = n: every step falls back, so run_batch must
        // replicate run_leap's RNG consumption and counters exactly.
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let n = 300u64;
        for seed in [1u64, 7, 42] {
            let mut pop_a = CountPopulation::new(&proto, n);
            pop_a.set_count(s, n - 1);
            pop_a.set_count(i, 1);
            let mut sched_a = UniformRandomScheduler::from_seed(seed);
            let leap = Simulator::new(&proto)
                .run_leap(&mut pop_a, &mut sched_a, &Silent, u64::MAX)
                .unwrap();

            let mut pop_b = CountPopulation::new(&proto, n);
            pop_b.set_count(s, n - 1);
            pop_b.set_count(i, 1);
            let mut sched_b = UniformRandomScheduler::from_seed(seed);
            let cfg = BatchConfig {
                safety_threshold: n,
                ..BatchConfig::default()
            };
            let batch = Simulator::new(&proto)
                .run_batch_configured(
                    &mut pop_b,
                    &mut sched_b,
                    &Silent,
                    u64::MAX,
                    &cfg,
                    &mut NullObserver,
                )
                .unwrap();
            assert_eq!(leap, batch, "seed {seed}");
            assert_eq!(pop_a.counts(), pop_b.counts(), "seed {seed}");
        }
    }

    #[test]
    fn batch_already_stable_returns_zero() {
        let proto = epidemic();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 5);
        pop.set_count(proto.initial_state(), 0);
        pop.set_count(i, 5);
        let mut sched = UniformRandomScheduler::from_seed(0);
        let res = Simulator::new(&proto)
            .run_batch(&mut pop, &mut sched, &Silent, 100)
            .unwrap();
        assert_eq!(res.interactions, 0);
    }

    #[test]
    fn batch_limit_is_reported() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 1000);
        pop.set_count(s, 999);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        let err = Simulator::new(&proto)
            .run_batch(&mut pop, &mut sched, &Silent, 5)
            .unwrap_err();
        assert_eq!(
            err,
            crate::simulator::RunError::InteractionLimit { limit: 5 }
        );
    }

    #[test]
    fn batch_too_small_population_errors() {
        let proto = epidemic();
        let mut pop = CountPopulation::new(&proto, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        let err = Simulator::new(&proto)
            .run_batch(&mut pop, &mut sched, &crate::stability::Never, 5)
            .unwrap_err();
        assert_eq!(err, crate::simulator::RunError::PopulationTooSmall);
    }

    #[test]
    fn batch_frozen_configuration_hits_limit() {
        let proto = epidemic();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&proto, 50);
        pop.set_count(proto.initial_state(), 0);
        pop.set_count(i, 50);
        let mut sched = UniformRandomScheduler::from_seed(3);
        let err = Simulator::new(&proto)
            .run_batch(&mut pop, &mut sched, &crate::stability::Never, u64::MAX)
            .unwrap_err();
        assert_eq!(
            err,
            crate::simulator::RunError::InteractionLimit { limit: u64::MAX }
        );
    }
}
