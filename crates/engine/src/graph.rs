//! Interaction graphs.
//!
//! The paper (like most population-protocol work following Angluin et al.)
//! assumes a *complete* interaction graph: any two agents may interact.
//! The engine nevertheless supports restricted interaction graphs for the
//! per-agent representation, both to demonstrate the framework's
//! generality and because the protocol's correctness argument genuinely
//! depends on completeness (global fairness quantifies over transitions the
//! graph permits) — a ring, for instance, can strand chain-builder agents.
//! Tests use this to show *where* the complete-graph assumption bites.

use crate::population::{AgentPopulation, Population};
use crate::scheduler::AgentScheduler;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An undirected interaction graph over agent indices `0..n`.
#[derive(Clone, Debug)]
pub enum InteractionGraph {
    /// Every pair of distinct agents may interact (the paper's model).
    Complete {
        /// Number of agents.
        n: usize,
    },
    /// Only the listed undirected edges may interact.
    Explicit {
        /// Number of agents.
        n: usize,
        /// Undirected edges `(u, v)`, `u ≠ v`.
        edges: Vec<(u32, u32)>,
    },
}

impl InteractionGraph {
    /// The complete graph on `n` agents.
    pub fn complete(n: usize) -> Self {
        InteractionGraph::Complete { n }
    }

    /// A cycle `0 — 1 — … — (n−1) — 0`. Requires `n ≥ 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 agents");
        let edges = (0..n as u32).map(|u| (u, (u + 1) % n as u32)).collect();
        InteractionGraph::Explicit { n, edges }
    }

    /// A star with agent 0 at the centre. Requires `n ≥ 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least 2 agents");
        let edges = (1..n as u32).map(|v| (0, v)).collect();
        InteractionGraph::Explicit { n, edges }
    }

    /// An explicit edge list. Edges must connect distinct agents in range.
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!(u != v, "self-loop ({u}, {v})");
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
        }
        InteractionGraph::Explicit { n, edges }
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        match self {
            InteractionGraph::Complete { n } | InteractionGraph::Explicit { n, .. } => *n,
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        match self {
            InteractionGraph::Complete { n } => n * (n - 1) / 2,
            InteractionGraph::Explicit { edges, .. } => edges.len(),
        }
    }

    /// Whether the graph is connected (a prerequisite for any nontrivial
    /// computation to involve all agents).
    pub fn is_connected(&self) -> bool {
        let n = self.num_agents();
        if n == 0 {
            return true;
        }
        match self {
            InteractionGraph::Complete { .. } => true,
            InteractionGraph::Explicit { edges, .. } => {
                let mut adj = vec![Vec::new(); n];
                for &(u, v) in edges {
                    adj[u as usize].push(v as usize);
                    adj[v as usize].push(u as usize);
                }
                let mut seen = vec![false; n];
                let mut stack = vec![0usize];
                seen[0] = true;
                let mut visited = 1;
                while let Some(u) = stack.pop() {
                    for &v in &adj[u] {
                        if !seen[v] {
                            seen[v] = true;
                            visited += 1;
                            stack.push(v);
                        }
                    }
                }
                visited == n
            }
        }
    }
}

/// Uniform-random scheduler restricted to a graph: each step, an edge is
/// chosen uniformly at random and oriented uniformly at random.
///
/// On the complete graph this coincides with
/// [`crate::scheduler::UniformRandomScheduler`]'s distribution over ordered
/// pairs.
#[derive(Clone, Debug)]
pub struct GraphScheduler {
    graph: InteractionGraph,
    rng: SmallRng,
}

impl GraphScheduler {
    /// Scheduler over `graph`, seeded deterministically.
    pub fn new(graph: InteractionGraph, seed: u64) -> Self {
        assert!(graph.num_edges() > 0, "graph has no edges to schedule");
        GraphScheduler {
            graph,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }
}

impl AgentScheduler for GraphScheduler {
    fn select_agents(&mut self, pop: &AgentPopulation) -> (usize, usize) {
        debug_assert_eq!(
            pop.num_agents() as usize,
            self.graph.num_agents(),
            "population size does not match scheduler graph"
        );
        let (u, v) = match &self.graph {
            InteractionGraph::Complete { n } => {
                let i = self.rng.gen_range(0..*n);
                let mut j = self.rng.gen_range(0..*n - 1);
                if j >= i {
                    j += 1;
                }
                return (i, j);
            }
            InteractionGraph::Explicit { edges, .. } => {
                let e = edges[self.rng.gen_range(0..edges.len())];
                (e.0 as usize, e.1 as usize)
            }
        };
        if self.rng.gen_bool(0.5) {
            (u, v)
        } else {
            (v, u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    #[test]
    fn ring_and_star_shapes() {
        let r = InteractionGraph::ring(5);
        assert_eq!(r.num_edges(), 5);
        assert!(r.is_connected());
        let s = InteractionGraph::star(5);
        assert_eq!(s.num_edges(), 4);
        assert!(s.is_connected());
        let c = InteractionGraph::complete(5);
        assert_eq!(c.num_edges(), 10);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = InteractionGraph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        InteractionGraph::from_edges(3, vec![(1, 1)]);
    }

    #[test]
    fn graph_scheduler_respects_edges() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        let p = spec.compile().unwrap();
        let pop = AgentPopulation::new(&p, 4);
        let mut sched = GraphScheduler::new(InteractionGraph::ring(4), 7);
        for _ in 0..200 {
            let (i, j) = sched.select_agents(&pop);
            let d = (i as i64 - j as i64).rem_euclid(4);
            assert!(d == 1 || d == 3, "non-ring pair ({i}, {j})");
        }
    }

    #[test]
    fn complete_graph_scheduler_covers_all_pairs() {
        let mut spec = ProtocolSpec::new("t");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        let p = spec.compile().unwrap();
        let pop = AgentPopulation::new(&p, 3);
        let mut sched = GraphScheduler::new(InteractionGraph::complete(3), 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(sched.select_agents(&pop));
        }
        assert_eq!(seen.len(), 6);
    }
}
