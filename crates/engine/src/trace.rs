//! Scripted executions and configuration pretty-printing.
//!
//! The paper illustrates its protocol with two hand-picked executions
//! (Figures 1 and 2). [`ScriptedExecution`] replays such executions on a
//! per-agent population, recording each transition, so tests can assert
//! the exact intermediate configurations the paper shows.

use crate::population::AgentPopulation;
use crate::protocol::{CompiledProtocol, StateId};
use std::fmt::Write as _;

/// One applied interaction in a scripted execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionRecord {
    /// First agent (initiator) index.
    pub i: usize,
    /// Second agent (responder) index.
    pub j: usize,
    /// State of agent `i` before.
    pub p: StateId,
    /// State of agent `j` before.
    pub q: StateId,
    /// State of agent `i` after.
    pub p2: StateId,
    /// State of agent `j` after.
    pub q2: StateId,
}

impl TransitionRecord {
    /// Whether the interaction was a null (identity) interaction.
    pub fn is_identity(&self) -> bool {
        self.p == self.p2 && self.q == self.q2
    }
}

/// Replays explicit agent-pair interactions, keeping a transition log.
pub struct ScriptedExecution<'a> {
    proto: &'a CompiledProtocol,
    pop: AgentPopulation,
    log: Vec<TransitionRecord>,
}

impl<'a> ScriptedExecution<'a> {
    /// Start from the all-`initial` configuration of `n` agents.
    pub fn new(proto: &'a CompiledProtocol, n: usize) -> Self {
        ScriptedExecution {
            proto,
            pop: AgentPopulation::new(proto, n),
            log: Vec::new(),
        }
    }

    /// Start from an explicit per-agent state assignment.
    pub fn from_states(proto: &'a CompiledProtocol, states: Vec<StateId>) -> Self {
        ScriptedExecution {
            proto,
            pop: AgentPopulation::from_states(states, proto.num_states()),
            log: Vec::new(),
        }
    }

    /// Apply the interaction between agents `i` (initiator) and `j`
    /// (responder); 0-based indices. Returns the transition performed.
    pub fn interact(&mut self, i: usize, j: usize) -> TransitionRecord {
        let (p, q, p2, q2) = self.pop.interact(self.proto, i, j);
        let rec = TransitionRecord { i, j, p, q, p2, q2 };
        self.log.push(rec);
        rec
    }

    /// Apply a sequence of interactions.
    pub fn interact_all(&mut self, pairs: &[(usize, usize)]) {
        for &(i, j) in pairs {
            self.interact(i, j);
        }
    }

    /// The population in its current configuration.
    pub fn population(&self) -> &AgentPopulation {
        &self.pop
    }

    /// Mutable access (fault injection mid-script).
    pub fn population_mut(&mut self) -> &mut AgentPopulation {
        &mut self.pop
    }

    /// The transition log so far.
    pub fn log(&self) -> &[TransitionRecord] {
        &self.log
    }

    /// Current states by agent, as names — e.g.
    /// `["initial", "m2", "g1", …]`.
    pub fn state_names(&self) -> Vec<&str> {
        self.pop
            .states()
            .iter()
            .map(|&s| self.proto.state_name(s))
            .collect()
    }

    /// Render the current configuration as `a1:state a2:state …`,
    /// matching the agent-labelled style of the paper's figures
    /// (agents are numbered from 1).
    pub fn config_string(&self) -> String {
        let mut out = String::new();
        for (idx, &s) in self.pop.states().iter().enumerate() {
            if idx > 0 {
                out.push(' ');
            }
            let _ = write!(out, "a{}:{}", idx + 1, self.proto.state_name(s));
        }
        out
    }
}

/// Render a count vector as `state×count` pairs, omitting zero counts —
/// e.g. `initial×3 g1×2 m2×1`.
pub fn counts_pretty(proto: &CompiledProtocol, counts: &[u64]) -> String {
    let mut out = String::new();
    for (idx, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        let _ = write!(out, "{}×{}", proto.state_name(StateId(idx as u16)), c);
    }
    if out.is_empty() {
        out.push_str("(empty)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::spec::ProtocolSpec;

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn scripted_execution_logs_transitions() {
        let p = epidemic();
        let i_state = p.state_by_name("I").unwrap();
        let mut exec = ScriptedExecution::new(&p, 3);
        exec.population_mut().set_state(0, i_state);
        let rec = exec.interact(0, 1);
        assert!(!rec.is_identity());
        assert_eq!(rec.q2, i_state);
        let rec = exec.interact(0, 1); // now identity: both infected
        assert!(rec.is_identity());
        assert_eq!(exec.log().len(), 2);
        assert_eq!(exec.state_names(), vec!["I", "I", "S"]);
    }

    #[test]
    fn config_string_is_agent_labelled() {
        let p = epidemic();
        let exec = ScriptedExecution::new(&p, 2);
        assert_eq!(exec.config_string(), "a1:S a2:S");
    }

    #[test]
    fn counts_pretty_omits_zeros() {
        let p = epidemic();
        assert_eq!(counts_pretty(&p, &[2, 0]), "S×2");
        assert_eq!(counts_pretty(&p, &[1, 3]), "S×1 I×3");
        assert_eq!(counts_pretty(&p, &[0, 0]), "(empty)");
    }

    #[test]
    fn interact_all_applies_in_order() {
        let p = epidemic();
        let i_state = p.state_by_name("I").unwrap();
        let mut exec = ScriptedExecution::new(&p, 4);
        exec.population_mut().set_state(0, i_state);
        exec.interact_all(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(exec.population().count(i_state), 4);
    }
}
