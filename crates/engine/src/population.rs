//! Population representations.
//!
//! Agents in the population protocol model are anonymous and, on a complete
//! interaction graph, exchangeable: the future of an execution under the
//! uniform-random scheduler depends only on the *multiset* of states. The
//! engine therefore offers two representations:
//!
//! * [`CountPopulation`] — a count vector over `Q`. Memory O(|Q|),
//!   interaction O(|Q|) (dominated by sampling a weighted pair). This is
//!   exact for all of the paper's experiments and is what the figure
//!   harnesses use.
//! * [`AgentPopulation`] — one state per agent. Supports per-agent group
//!   tracking, scripted interaction sequences (Figures 1–2), fault
//!   injection, and restricted interaction graphs.
//!
//! Both implement [`Population`], and
//! [`AgentPopulation::count_view`] projects the per-agent form onto the
//! count form so results can be cross-checked in tests.

use crate::protocol::{CompiledProtocol, GroupId, StateId};

/// Common interface over population representations.
pub trait Population {
    /// Number of agents `n`.
    fn num_agents(&self) -> u64;

    /// Count of agents currently in state `s`.
    fn count(&self, s: StateId) -> u64;

    /// Count vector over all states (indexed by `StateId::index`).
    fn counts(&self) -> &[u64];

    /// Number of agents in each group under the output map `f`
    /// (index 0 = group 1, matching the paper's 1-based numbering).
    fn group_sizes(&self, proto: &CompiledProtocol) -> Vec<u64> {
        let mut sizes = vec![0u64; proto.num_groups()];
        for s in proto.states() {
            sizes[proto.group_of(s).number() - 1] += self.count(s);
        }
        sizes
    }
}

/// Fenwick (binary indexed) tree over the count vector: maintained
/// prefix sums, so rank → state resolves by binary descent instead of a
/// linear scan over `Q`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CumulativeCounts {
    /// 1-based Fenwick array; `tree[i]` covers `counts[i - lowbit(i)..i]`.
    tree: Vec<u64>,
}

impl CumulativeCounts {
    fn build(counts: &[u64]) -> Self {
        let m = counts.len();
        let mut tree = vec![0u64; m + 1];
        for (idx, &c) in counts.iter().enumerate() {
            let i = idx + 1;
            tree[i] += c;
            let parent = i + (i & i.wrapping_neg());
            if parent <= m {
                tree[parent] += tree[i];
            }
        }
        CumulativeCounts { tree }
    }

    /// Add `delta` to the count at state index `idx`.
    #[inline]
    fn add(&mut self, idx: usize, delta: i64) {
        let m = self.tree.len() - 1;
        let mut i = idx + 1;
        while i <= m {
            if delta >= 0 {
                self.tree[i] += delta as u64;
            } else {
                self.tree[i] -= delta.unsigned_abs();
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `counts[0..idx]`.
    #[inline]
    fn prefix(&self, idx: usize) -> u64 {
        let mut sum = 0;
        let mut i = idx;
        while i > 0 {
            sum += self.tree[i];
            i &= i - 1;
        }
        sum
    }

    /// Largest index `idx` with `prefix(idx) ≤ r`, found by binary
    /// descent; this is the state index owning rank `r` when `r < n`.
    /// Returns `tree.len() - 1` (one past the end) when `r ≥ n`.
    #[inline]
    fn rank(&self, mut r: u64) -> usize {
        let m = self.tree.len() - 1;
        let mut pos = 0usize;
        let mut step = m.next_power_of_two();
        // next_power_of_two may exceed m; the `next <= m` guard handles it.
        while step > 0 {
            let next = pos + step;
            if next <= m && self.tree[next] <= r {
                r -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }
}

/// Count-vector population: the state multiset of an anonymous population.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountPopulation {
    counts: Vec<u64>,
    /// Maintained Fenwick prefix sums over `counts`, shared by the rank
    /// samplers and the leap kernel.
    cum: CumulativeCounts,
    n: u64,
}

impl CountPopulation {
    /// A population of `n` agents, all in the protocol's initial state.
    pub fn new(proto: &CompiledProtocol, n: u64) -> Self {
        let mut counts = vec![0u64; proto.num_states()];
        counts[proto.initial_state().index()] = n;
        let cum = CumulativeCounts::build(&counts);
        CountPopulation { counts, cum, n }
    }

    /// A population with explicit counts (sum = `n`).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let n = counts.iter().sum();
        let cum = CumulativeCounts::build(&counts);
        CountPopulation { counts, cum, n }
    }

    /// Overwrite the count of `s` (adjusts `n` accordingly).
    pub fn set_count(&mut self, s: StateId, c: u64) {
        let old = self.counts[s.index()];
        self.n = self.n - old + c;
        self.counts[s.index()] = c;
        self.cum.add(s.index(), c as i64 - old as i64);
    }

    /// Apply one interaction: an agent leaves `p` for `p2` and an agent
    /// leaves `q` for `q2`.
    ///
    /// # Panics
    /// In debug builds, panics if the population does not contain the
    /// required agents (`count(p) ≥ 1`, and `≥ 2` when `p == q`).
    #[inline]
    pub fn apply(&mut self, p: StateId, q: StateId, p2: StateId, q2: StateId) {
        debug_assert!(self.counts[p.index()] >= 1);
        self.counts[p.index()] -= 1;
        debug_assert!(self.counts[q.index()] >= 1);
        self.counts[q.index()] -= 1;
        self.counts[p2.index()] += 1;
        self.counts[q2.index()] += 1;
        self.cum.add(p.index(), -1);
        self.cum.add(q.index(), -1);
        self.cum.add(p2.index(), 1);
        self.cum.add(q2.index(), 1);
    }

    /// Sum of counts of all states with index `< s` — the rank of the
    /// first agent in state `s` under the fixed per-configuration agent
    /// order used by [`Self::state_of_rank`].
    #[inline]
    pub fn prefix_count(&self, s: StateId) -> u64 {
        self.cum.prefix(s.index())
    }

    /// Map the `i`-th agent (in an arbitrary but fixed per-configuration
    /// order: agents sorted by state index) to its state. `i < n`.
    ///
    /// This is the weighted-sampling kernel: picking `i` uniformly from
    /// `0..n` and mapping through this function selects a state with
    /// probability proportional to its count. Resolves in O(log |Q|) via
    /// the maintained Fenwick prefix sums.
    #[inline]
    pub fn state_of_rank(&self, i: u64) -> StateId {
        let idx = self.cum.rank(i);
        if idx >= self.counts.len() {
            unreachable!("rank out of range: population has {} agents", self.n)
        }
        StateId(idx as u16)
    }

    /// Like [`Self::state_of_rank`] but with one agent of state `skip`
    /// removed — used to sample the second member of an ordered pair
    /// without replacement.
    ///
    /// Removing one `skip` agent shifts every rank at or past that
    /// agent's last position up by one, so the lookup reduces to a rank
    /// shift plus an ordinary [`Self::state_of_rank`].
    #[inline]
    pub fn state_of_rank_excluding(&self, i: u64, skip: StateId) -> StateId {
        debug_assert!(self.counts[skip.index()] >= 1);
        // Rank (in the full order) of the removed agent: the last agent
        // in state `skip`.
        let removed = self.cum.prefix(skip.index()) + self.counts[skip.index()] - 1;
        if i < removed {
            self.state_of_rank(i)
        } else {
            self.state_of_rank(i + 1)
        }
    }

    /// True if the count vector exactly equals `target`.
    pub fn matches(&self, target: &[u64]) -> bool {
        self.counts == target
    }
}

impl Population for CountPopulation {
    #[inline(always)]
    fn num_agents(&self) -> u64 {
        self.n
    }

    #[inline(always)]
    fn count(&self, s: StateId) -> u64 {
        self.counts[s.index()]
    }

    #[inline(always)]
    fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Per-agent population: explicit state for each of `n` agents.
#[derive(Clone, Debug)]
pub struct AgentPopulation {
    states: Vec<StateId>,
    counts: Vec<u64>,
}

impl AgentPopulation {
    /// A population of `n` agents, all in the protocol's initial state.
    pub fn new(proto: &CompiledProtocol, n: usize) -> Self {
        let mut counts = vec![0u64; proto.num_states()];
        counts[proto.initial_state().index()] = n as u64;
        AgentPopulation {
            states: vec![proto.initial_state(); n],
            counts,
        }
    }

    /// A population with explicit per-agent states. `num_states` sizes the
    /// count cache and must exceed every state index used.
    pub fn from_states(states: Vec<StateId>, num_states: usize) -> Self {
        let mut counts = vec![0u64; num_states];
        for s in &states {
            counts[s.index()] += 1;
        }
        AgentPopulation { states, counts }
    }

    /// State of agent `i`.
    #[inline(always)]
    pub fn state_of(&self, i: usize) -> StateId {
        self.states[i]
    }

    /// All agent states, in agent order.
    pub fn states(&self) -> &[StateId] {
        &self.states
    }

    /// Forcibly set the state of agent `i` (fault injection / scripted
    /// setups). Keeps the count cache consistent.
    pub fn set_state(&mut self, i: usize, s: StateId) {
        self.counts[self.states[i].index()] -= 1;
        self.counts[s.index()] += 1;
        self.states[i] = s;
    }

    /// Remove agent `i` from the population (models agent failure, as in
    /// the fault-tolerance application the paper's introduction cites).
    /// Order of the remaining agents is not preserved: the last agent is
    /// swapped into slot `i` (callers tracking agent identity — e.g. a
    /// topology — must apply the same remapping).
    pub fn remove_agent(&mut self, i: usize) -> StateId {
        let s = self.states.swap_remove(i);
        self.counts[s.index()] -= 1;
        s
    }

    /// Add a new agent in state `s` (models an agent joining mid-run, as
    /// in churn scenarios). Returns the new agent's index, which is always
    /// the current highest index.
    pub fn add_agent(&mut self, s: StateId) -> usize {
        self.states.push(s);
        self.counts[s.index()] += 1;
        self.states.len() - 1
    }

    /// Apply one interaction between the ordered agent pair `(i, j)`,
    /// `i ≠ j`, updating both states through `δ`. Returns the transition
    /// `(p, q, p2, q2)` that occurred.
    #[inline]
    pub fn interact(
        &mut self,
        proto: &CompiledProtocol,
        i: usize,
        j: usize,
    ) -> (StateId, StateId, StateId, StateId) {
        assert_ne!(i, j, "an agent cannot interact with itself");
        let p = self.states[i];
        let q = self.states[j];
        let (p2, q2) = proto.delta(p, q);
        if p2 != p {
            self.counts[p.index()] -= 1;
            self.counts[p2.index()] += 1;
            self.states[i] = p2;
        }
        if q2 != q {
            self.counts[q.index()] -= 1;
            self.counts[q2.index()] += 1;
            self.states[j] = q2;
        }
        (p, q, p2, q2)
    }

    /// Project onto the count representation.
    pub fn count_view(&self) -> CountPopulation {
        CountPopulation::from_counts(self.counts.clone())
    }

    /// Group of agent `i` under the output map.
    pub fn group_of(&self, proto: &CompiledProtocol, i: usize) -> GroupId {
        proto.group_of(self.states[i])
    }
}

impl Population for AgentPopulation {
    #[inline(always)]
    fn num_agents(&self) -> u64 {
        self.states.len() as u64
    }

    #[inline(always)]
    fn count(&self, s: StateId) -> u64 {
        self.counts[s.index()]
    }

    #[inline(always)]
    fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProtocolSpec;

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn count_population_init_and_apply() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 10);
        assert_eq!(pop.count(s), 10);
        pop.set_count(s, 9);
        pop.set_count(i, 1);
        assert_eq!(pop.num_agents(), 10);
        pop.apply(i, s, i, i);
        assert_eq!(pop.count(i), 2);
        assert_eq!(pop.count(s), 8);
        assert_eq!(pop.num_agents(), 10);
    }

    #[test]
    fn rank_sampling_covers_all_agents() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 5);
        pop.set_count(s, 3);
        pop.set_count(i, 2);
        let ranks: Vec<StateId> = (0..5).map(|r| pop.state_of_rank(r)).collect();
        assert_eq!(ranks.iter().filter(|&&x| x == s).count(), 3);
        assert_eq!(ranks.iter().filter(|&&x| x == i).count(), 2);
    }

    #[test]
    fn rank_sampling_excluding() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 5);
        pop.set_count(s, 3);
        pop.set_count(i, 2);
        // Excluding one S agent: 2 S and 2 I remain.
        let ranks: Vec<StateId> = (0..4).map(|r| pop.state_of_rank_excluding(r, s)).collect();
        assert_eq!(ranks.iter().filter(|&&x| x == s).count(), 2);
        assert_eq!(ranks.iter().filter(|&&x| x == i).count(), 2);
    }

    #[test]
    fn agent_population_interact_updates_counts() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = AgentPopulation::new(&p, 4);
        pop.set_state(0, i);
        let (p0, q0, p2, q2) = pop.interact(&p, 0, 1);
        assert_eq!((p0, q0, p2, q2), (i, s, i, i));
        assert_eq!(pop.count(i), 2);
        assert_eq!(pop.count_view().counts(), pop.counts());
    }

    #[test]
    fn agent_population_remove_agent() {
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = AgentPopulation::new(&p, 4);
        pop.set_state(2, i);
        let removed = pop.remove_agent(2);
        assert_eq!(removed, i);
        assert_eq!(pop.num_agents(), 3);
        assert_eq!(pop.count(i), 0);
    }

    #[test]
    fn group_sizes_projection() {
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = AgentPopulation::new(&p, 6);
        pop.set_state(0, i);
        pop.set_state(1, i);
        assert_eq!(pop.group_sizes(&p), vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot interact with itself")]
    fn self_interaction_panics() {
        let p = epidemic();
        let mut pop = AgentPopulation::new(&p, 4);
        pop.interact(&p, 1, 1);
    }
}
