//! The execution driver.
//!
//! A [`Simulator`] repeatedly asks a scheduler for an interaction pair,
//! applies the protocol's transition, notifies an observer, and — after
//! every *count-changing* interaction — consults a stability criterion.
//! (Identity interactions cannot alter stability, so skipping the check on
//! them is an exact optimisation, not an approximation; the criterion is
//! also evaluated once on the initial configuration.)
//!
//! The returned [`RunResult::interactions`] is precisely the paper's §5
//! metric: the number of interactions performed strictly before the first
//! stable configuration (a population that starts stable reports 0).
//!
//! Three kernels drive count-vector populations under the uniform random
//! scheduler:
//!
//! * [`Simulator::run`] — the naive loop: one sampled pair per iteration.
//! * [`Simulator::run_leap`] — the leap kernel: skips each maximal run of
//!   identity interactions in closed form (see [`crate::leap`]), paying
//!   per *effective* interaction instead of per interaction. Same
//!   distribution over outcomes, orders of magnitude faster near
//!   stabilisation where identity interactions dominate.
//! * [`Simulator::run_batch`] — the tau-leap batch kernel: fires whole
//!   batches of rule applications per step with bounded propensity drift
//!   and exact-leap fallback near convergence (see [`crate::batch`]).
//!   Bounded-error in the bulk, exact in the endgame; the giant-`n`
//!   workhorse.

use crate::batch::{BatchConfig, BatchCore, BatchTrial, Scratch, StepOutcome};
use crate::leap::{sample_identity_run, IdentityWeights};
use crate::observer::{NullObserver, Observer};
use crate::population::{AgentPopulation, CountPopulation, Population};
use crate::protocol::CompiledProtocol;
use crate::scheduler::{AgentScheduler, PairScheduler, UniformRandomScheduler};
use crate::stability::StabilityCriterion;
use std::fmt;

/// Outcome of a completed (stabilised) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Interactions performed before the first stable configuration,
    /// including identity (null) interactions — the paper's time metric.
    pub interactions: u64,
    /// Of those, interactions whose transition changed at least one state.
    pub effective_interactions: u64,
}

/// A run failed to reach stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The interaction limit was reached before stabilisation. Carries the
    /// limit so callers can report the censoring point.
    InteractionLimit {
        /// The limit that was exhausted.
        limit: u64,
    },
    /// Fewer than two agents: no interaction is possible and the
    /// configuration is not stable under the supplied criterion.
    PopulationTooSmall,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InteractionLimit { limit } => {
                write!(f, "no stable configuration within {limit} interactions")
            }
            RunError::PopulationTooSmall => {
                write!(f, "population has fewer than two agents")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Drives executions of one compiled protocol.
#[derive(Clone, Copy, Debug)]
pub struct Simulator<'a> {
    proto: &'a CompiledProtocol,
}

impl<'a> Simulator<'a> {
    /// A simulator for `proto`.
    pub fn new(proto: &'a CompiledProtocol) -> Self {
        Simulator { proto }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &'a CompiledProtocol {
        self.proto
    }

    /// Run a count-vector population until `criterion` reports stability,
    /// without observation.
    pub fn run<S, C>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        S: PairScheduler,
        C: StabilityCriterion,
    {
        self.run_observed(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &mut NullObserver,
        )
    }

    /// Run a count-vector population until stability, reporting every
    /// interaction to `observer`.
    pub fn run_observed<S, C, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        S: PairScheduler,
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        if pop.num_agents() < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let mut interactions: u64 = 0;
        let mut effective: u64 = 0;
        while interactions < max_interactions {
            let (p, q) = scheduler.select_pair(pop);
            let (p2, q2) = self.proto.delta(p, q);
            interactions += 1;
            if p2 == p && q2 == q {
                observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
                continue;
            }
            pop.apply(p, q, p2, q2);
            effective += 1;
            observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
            if criterion.is_stable(self.proto, pop.counts()) {
                return Ok(RunResult {
                    interactions,
                    effective_interactions: effective,
                });
            }
        }
        Err(RunError::InteractionLimit {
            limit: max_interactions,
        })
    }

    /// Run a count-vector population until stability with the **leap
    /// kernel**, without observation. Same contract as [`Simulator::run`];
    /// see [`Simulator::run_leap_observed`] for semantics.
    pub fn run_leap<C>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut UniformRandomScheduler,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        C: StabilityCriterion,
    {
        self.run_leap_observed(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &mut NullObserver,
        )
    }

    /// Run a count-vector population until stability with the **leap
    /// kernel**: each maximal run of consecutive identity interactions is
    /// sampled in closed form (geometric in the identity-pair probability,
    /// see [`crate::leap`]) and credited to the interaction counter in
    /// O(1), then one *effective* pair is sampled from the exact
    /// conditional distribution and applied.
    ///
    /// Identical `RunResult`/`RunError` contract to
    /// [`Simulator::run_observed`], and the returned statistics follow the
    /// same distribution (the kernels consume randomness differently, so
    /// individual runs differ for a given seed — equality is in law, not
    /// bit-for-bit). The scheduler parameter is the concrete
    /// [`UniformRandomScheduler`] because the geometric skip is an algebraic
    /// property of precisely that scheduler.
    ///
    /// Observers see every effective interaction via
    /// [`Observer::on_interaction`] with its true cumulative interaction
    /// number, and each skipped identity run via
    /// [`Observer::on_identity_run`]; per-identity callbacks do not happen,
    /// but because counts are constant across a run, observers can derive
    /// any per-step quantity inside it in closed form (as
    /// [`crate::observer::TrajectorySampler`] does for its period
    /// boundaries). On the [`RunError::InteractionLimit`] path the
    /// trailing identity run that overflows the budget is not reported.
    ///
    /// Stability is consulted through the criterion's incremental
    /// [`crate::stability::StabilityTracker`], fed the same ±1 count deltas
    /// the population applies.
    pub fn run_leap_observed<C, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut UniformRandomScheduler,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        let n = pop.num_agents();
        if n < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let total = n * (n - 1);
        let mut weights = IdentityWeights::new(self.proto, pop.counts());
        let mut tracker = criterion.tracker(self.proto, pop.counts());
        let mut interactions: u64 = 0;
        let mut effective: u64 = 0;
        loop {
            let w_id = weights.identity_weight();
            if w_id == total {
                // Every enabled pair is an identity: the configuration can
                // never change again, and the criterion already judged it
                // unstable — the naive loop would spin to the limit.
                return Err(RunError::InteractionLimit {
                    limit: max_interactions,
                });
            }
            let g = sample_identity_run(scheduler.rng_mut(), w_id, total);
            // The naive loop admits the stabilising interaction only while
            // the counter is below the limit: g identities plus one
            // effective interaction must fit in the remaining budget.
            if g >= max_interactions - interactions {
                return Err(RunError::InteractionLimit {
                    limit: max_interactions,
                });
            }
            if g > 0 {
                interactions += g;
                observer.on_identity_run(interactions, g, pop.counts());
            }
            let (p, q) = weights.sample_effective(self.proto, n, pop.counts(), scheduler.rng_mut());
            let (p2, q2) = self.proto.delta(p, q);
            interactions += 1;
            effective += 1;
            for (s, delta) in [(p, -1), (q, -1), (p2, 1), (q2, 1)] {
                weights.apply_delta(self.proto, s, delta);
                tracker.apply_delta(s, delta);
            }
            pop.apply(p, q, p2, q2);
            observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
            if tracker.is_stable(self.proto, pop.counts()) {
                return Ok(RunResult {
                    interactions,
                    effective_interactions: effective,
                });
            }
        }
    }

    /// Run a count-vector population until stability with the **batch
    /// kernel** and its default [`BatchConfig`], without observation. Same
    /// contract as [`Simulator::run`]; see
    /// [`Simulator::run_batch_configured`] for semantics.
    pub fn run_batch<C>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut UniformRandomScheduler,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        C: StabilityCriterion,
    {
        self.run_batch_configured(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &BatchConfig::default(),
            &mut NullObserver,
        )
    }

    /// Run a count-vector population until stability with the **batch
    /// kernel** and its default [`BatchConfig`], reporting leaps and
    /// interactions to `observer`.
    pub fn run_batch_observed<C, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut UniformRandomScheduler,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        C: StabilityCriterion,
        O: Observer,
    {
        self.run_batch_configured(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &BatchConfig::default(),
            observer,
        )
    }

    /// Run a count-vector population until stability with the **batch
    /// (tau-leap) kernel**: per step the kernel either fires a whole
    /// batch of rule applications in one multinomial draw over the
    /// channel set, or — near convergence, at low counts, or when a leap
    /// would be degenerate — falls back to exact leap stepping (see
    /// [`crate::batch`] for the propensity model, error bound, and
    /// fallback policy).
    ///
    /// Identical `RunResult`/`RunError` contract to
    /// [`Simulator::run_leap_observed`]. Statistics follow the leap
    /// kernel's law up to the tau-leap approximation (bounded propensity
    /// drift of O(ε) per leap); with `cfg.safety_threshold ≥ n` every
    /// step falls back and the run is **bit-identical** to
    /// [`Simulator::run_leap_observed`] for the same seed.
    ///
    /// Observers see exact-fallback stretches through
    /// [`Observer::on_interaction`] / [`Observer::on_identity_run`]
    /// exactly as under the leap kernel, and each applied leap through
    /// [`Observer::on_leap_batch`]; fallback transitions are reported via
    /// [`Observer::on_batch_fallback`].
    pub fn run_batch_configured<C, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut UniformRandomScheduler,
        criterion: &C,
        max_interactions: u64,
        cfg: &BatchConfig,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        let n = pop.num_agents();
        if n < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let core = BatchCore::compile(self.proto);
        let mut scratch = Scratch::new(&core);
        let mut counts: Vec<u64> = pop.counts().to_vec();
        let mut trial = BatchTrial::new(self.proto, criterion, &counts);
        let outcome = loop {
            match trial.step(
                self.proto,
                &core,
                &mut counts,
                n,
                scheduler.rng_mut(),
                max_interactions,
                cfg,
                &mut scratch,
                observer,
            ) {
                StepOutcome::Continue => {}
                out => break out,
            }
        };
        // Write the detached count vector back through the population's
        // own accounting (sum-preserving, so `num_agents` is unchanged).
        for (s, &c) in counts.iter().enumerate() {
            pop.set_count(crate::protocol::StateId(s as u16), c);
        }
        match outcome {
            StepOutcome::Stable => Ok(RunResult {
                interactions: trial.interactions,
                effective_interactions: trial.effective,
            }),
            _ => Err(RunError::InteractionLimit {
                limit: max_interactions,
            }),
        }
    }

    /// Run a per-agent population until stability (on its count
    /// projection), reporting every interaction to `observer`.
    pub fn run_agents_observed<S, C, O>(
        &self,
        pop: &mut AgentPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        S: AgentScheduler,
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        if pop.num_agents() < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let mut interactions: u64 = 0;
        let mut effective: u64 = 0;
        while interactions < max_interactions {
            let (i, j) = scheduler.select_agents(pop);
            let (p, q, p2, q2) = pop.interact(self.proto, i, j);
            interactions += 1;
            let changed = p2 != p || q2 != q;
            if changed {
                effective += 1;
            }
            observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
            if changed && criterion.is_stable(self.proto, pop.counts()) {
                return Ok(RunResult {
                    interactions,
                    effective_interactions: effective,
                });
            }
        }
        Err(RunError::InteractionLimit {
            limit: max_interactions,
        })
    }

    /// Run a per-agent population without observation.
    pub fn run_agents<S, C>(
        &self,
        pop: &mut AgentPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        S: AgentScheduler,
        C: StabilityCriterion,
    {
        self.run_agents_observed(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &mut NullObserver,
        )
    }

    /// Perform exactly `steps` interactions on a count population,
    /// reporting each (identity or not) to `observer` exactly as
    /// [`Simulator::run_observed`] would — but with **no stability
    /// criterion**: the run never short-circuits, and no stability check
    /// is evaluated (not even initially). Useful for warm-up and for
    /// protocols without a stability notion.
    ///
    /// Returns a [`FixedRunSummary`] whose `interactions` always equals
    /// `steps` and whose `effective_interactions` counts the
    /// state-changing subset, mirroring [`RunResult`]'s fields.
    pub fn run_fixed<S, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        steps: u64,
        observer: &mut O,
    ) -> FixedRunSummary
    where
        S: PairScheduler,
        O: Observer,
    {
        let mut effective: u64 = 0;
        for step in 1..=steps {
            let (p, q) = scheduler.select_pair(pop);
            let (p2, q2) = self.proto.delta(p, q);
            if p2 != p || q2 != q {
                pop.apply(p, q, p2, q2);
                effective += 1;
            }
            observer.on_interaction(step, p, q, p2, q2, pop.counts());
        }
        FixedRunSummary {
            interactions: steps,
            effective_interactions: effective,
        }
    }
}

/// Summary of a [`Simulator::run_fixed`] run (which cannot fail and does
/// not stop early, hence no `Result`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FixedRunSummary {
    /// Interactions performed — always the requested `steps`.
    pub interactions: u64,
    /// Of those, interactions whose transition changed at least one state.
    pub effective_interactions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::UniformRandomScheduler;
    use crate::spec::ProtocolSpec;
    use crate::stability::{Never, Silent};

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn epidemic_stabilises_everyone_infected() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 64);
        pop.set_count(s, 63);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(11);
        let res = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 10_000_000)
            .unwrap();
        assert_eq!(pop.count(i), 64);
        // Coupon-collector-like: needs at least n - 1 infections.
        assert!(res.effective_interactions == 63);
        assert!(res.interactions >= 63);
    }

    #[test]
    fn already_stable_returns_zero() {
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 5);
        pop.set_count(p.initial_state(), 0);
        pop.set_count(i, 5);
        let mut sched = UniformRandomScheduler::from_seed(0);
        let res = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 100)
            .unwrap();
        assert_eq!(res.interactions, 0);
    }

    #[test]
    fn limit_is_reported() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 1000);
        pop.set_count(s, 999);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 5)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: 5 });
    }

    #[test]
    fn too_small_population_errors() {
        let p = epidemic();
        let mut pop = CountPopulation::new(&p, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        // A single agent can never interact; with a never-satisfied
        // criterion the simulator must report the population as too small
        // rather than spinning.
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Never, 5)
            .unwrap_err();
        assert_eq!(err, RunError::PopulationTooSmall);
    }

    #[test]
    fn agent_and_count_representations_agree_in_distribution() {
        // Same protocol, same seed policy; expect identical *final* states
        // and statistically indistinguishable interaction counts. Here we
        // only check final-state agreement per run.
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        for seed in 0..10 {
            let mut cpop = CountPopulation::new(&p, 30);
            cpop.set_count(s, 29);
            cpop.set_count(i, 1);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run(&mut cpop, &mut sched, &Silent, 1_000_000)
                .unwrap();

            let mut apop = AgentPopulation::new(&p, 30);
            apop.set_state(0, i);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run_agents(&mut apop, &mut sched, &Silent, 1_000_000)
                .unwrap();

            assert_eq!(cpop.count(i), 30);
            assert_eq!(apop.count(i), 30);
        }
    }

    #[test]
    fn run_fixed_performs_exact_step_count() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 10);
        pop.set_count(s, 9);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(4);
        let mut seen = 0u64;
        struct Counter<'a>(&'a mut u64);
        impl crate::observer::Observer for Counter<'_> {
            fn on_interaction(
                &mut self,
                _s: u64,
                _p: crate::protocol::StateId,
                _q: crate::protocol::StateId,
                _p2: crate::protocol::StateId,
                _q2: crate::protocol::StateId,
                _c: &[u64],
            ) {
                *self.0 += 1;
            }
        }
        Simulator::new(&p).run_fixed(&mut pop, &mut sched, 123, &mut Counter(&mut seen));
        assert_eq!(seen, 123);
    }

    #[test]
    fn never_criterion_always_hits_limit() {
        let p = epidemic();
        let mut pop = CountPopulation::new(&p, 10);
        let mut sched = UniformRandomScheduler::from_seed(4);
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Never, 50)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: 50 });
    }

    #[test]
    fn run_fixed_counts_effective_interactions() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 10);
        pop.set_count(s, 9);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(4);
        let summary = Simulator::new(&p).run_fixed(&mut pop, &mut sched, 5_000, &mut NullObserver);
        assert_eq!(summary.interactions, 5_000);
        // 5 000 interactions at n = 10 is ample to infect everyone:
        // exactly 9 effective (infection) interactions happened.
        assert_eq!(summary.effective_interactions, 9);
        assert_eq!(pop.count(i), 10);
    }

    #[test]
    fn leap_epidemic_stabilises_everyone_infected() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 64);
        pop.set_count(s, 63);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(11);
        let res = Simulator::new(&p)
            .run_leap(&mut pop, &mut sched, &Silent, 10_000_000)
            .unwrap();
        assert_eq!(pop.count(i), 64);
        assert_eq!(res.effective_interactions, 63);
        assert!(res.interactions >= 63);
    }

    #[test]
    fn leap_already_stable_returns_zero() {
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 5);
        pop.set_count(p.initial_state(), 0);
        pop.set_count(i, 5);
        let mut sched = UniformRandomScheduler::from_seed(0);
        let res = Simulator::new(&p)
            .run_leap(&mut pop, &mut sched, &Silent, 100)
            .unwrap();
        assert_eq!(res.interactions, 0);
    }

    #[test]
    fn leap_limit_is_reported() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 1000);
        pop.set_count(s, 999);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        // At n = 1000, stabilising takes ≫ 5 interactions (999 infections).
        let err = Simulator::new(&p)
            .run_leap(&mut pop, &mut sched, &Silent, 5)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: 5 });
    }

    #[test]
    fn leap_too_small_population_errors() {
        let p = epidemic();
        let mut pop = CountPopulation::new(&p, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        let err = Simulator::new(&p)
            .run_leap(&mut pop, &mut sched, &Never, 5)
            .unwrap_err();
        assert_eq!(err, RunError::PopulationTooSmall);
    }

    #[test]
    fn leap_all_identity_configuration_hits_limit_immediately() {
        // All agents infected and criterion Never: every enabled pair is
        // an identity, so the configuration can never change. The naive
        // loop spins to the limit; the leap kernel reports the limit
        // without spinning.
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 50);
        pop.set_count(p.initial_state(), 0);
        pop.set_count(i, 50);
        let mut sched = UniformRandomScheduler::from_seed(3);
        let err = Simulator::new(&p)
            .run_leap(&mut pop, &mut sched, &Never, u64::MAX)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: u64::MAX });
    }

    #[test]
    fn leap_observer_sees_consistent_interaction_numbering() {
        // The cumulative step numbers reported to the observer must be
        // strictly increasing, count every skipped identity, and end at
        // the RunResult totals.
        struct Checker {
            last_step: u64,
            effective_seen: u64,
            identities_seen: u64,
        }
        impl crate::observer::Observer for Checker {
            fn on_interaction(
                &mut self,
                step: u64,
                _p: crate::protocol::StateId,
                _q: crate::protocol::StateId,
                _p2: crate::protocol::StateId,
                _q2: crate::protocol::StateId,
                _c: &[u64],
            ) {
                assert_eq!(step, self.last_step + 1, "effective step must follow");
                self.last_step = step;
                self.effective_seen += 1;
            }
            fn on_identity_run(&mut self, last_step: u64, skipped: u64, _c: &[u64]) {
                assert!(skipped >= 1);
                assert_eq!(last_step, self.last_step + skipped);
                self.last_step = last_step;
                self.identities_seen += skipped;
            }
        }
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 40);
        pop.set_count(s, 39);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(17);
        let mut obs = Checker {
            last_step: 0,
            effective_seen: 0,
            identities_seen: 0,
        };
        let res = Simulator::new(&p)
            .run_leap_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut obs)
            .unwrap();
        assert_eq!(obs.effective_seen, res.effective_interactions);
        assert_eq!(
            obs.identities_seen + obs.effective_seen,
            res.interactions,
            "every interaction is accounted for"
        );
        assert_eq!(obs.last_step, res.interactions);
    }

    #[test]
    fn leap_and_naive_agree_on_mean_interactions() {
        // Same protocol, same grid of seeds: the two kernels must produce
        // statistically indistinguishable interactions-to-stability. The
        // epidemic at n = 24 has mean ≈ n(n−1)/2 · H_{n−1} ≈ 1040; with
        // 200 trials per kernel a 4-sigma band on the difference of means
        // is a tight yet reliable check.
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let n = 24u64;
        let trials = 200u64;
        let run_batch = |leap: bool| -> Vec<f64> {
            (0..trials)
                .map(|t| {
                    let mut pop = CountPopulation::new(&p, n);
                    pop.set_count(s, n - 1);
                    pop.set_count(i, 1);
                    let mut sched =
                        UniformRandomScheduler::from_seed(1000 + t + u64::from(leap) * 7919);
                    let sim = Simulator::new(&p);
                    let res = if leap {
                        sim.run_leap(&mut pop, &mut sched, &Silent, u64::MAX)
                    } else {
                        sim.run(&mut pop, &mut sched, &Silent, u64::MAX)
                    };
                    res.unwrap().interactions as f64
                })
                .collect()
        };
        let naive = run_batch(false);
        let leap = run_batch(true);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64], m: f64| {
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64
        };
        let (mn, ml) = (mean(&naive), mean(&leap));
        let se = ((var(&naive, mn) + var(&leap, ml)) / trials as f64).sqrt();
        let z = (mn - ml) / se;
        assert!(
            z.abs() < 4.0,
            "kernel means diverge: z = {z:.2} (naive {mn:.0}, leap {ml:.0})"
        );
    }
}
