//! The execution driver.
//!
//! A [`Simulator`] repeatedly asks a scheduler for an interaction pair,
//! applies the protocol's transition, notifies an observer, and — after
//! every *count-changing* interaction — consults a stability criterion.
//! (Identity interactions cannot alter stability, so skipping the check on
//! them is an exact optimisation, not an approximation; the criterion is
//! also evaluated once on the initial configuration.)
//!
//! The returned [`RunResult::interactions`] is precisely the paper's §5
//! metric: the number of interactions performed strictly before the first
//! stable configuration (a population that starts stable reports 0).

use crate::observer::{NullObserver, Observer};
use crate::population::{AgentPopulation, CountPopulation, Population};
use crate::protocol::CompiledProtocol;
use crate::scheduler::{AgentScheduler, PairScheduler};
use crate::stability::StabilityCriterion;
use std::fmt;

/// Outcome of a completed (stabilised) run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Interactions performed before the first stable configuration,
    /// including identity (null) interactions — the paper's time metric.
    pub interactions: u64,
    /// Of those, interactions whose transition changed at least one state.
    pub effective_interactions: u64,
}

/// A run failed to reach stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The interaction limit was reached before stabilisation. Carries the
    /// limit so callers can report the censoring point.
    InteractionLimit {
        /// The limit that was exhausted.
        limit: u64,
    },
    /// Fewer than two agents: no interaction is possible and the
    /// configuration is not stable under the supplied criterion.
    PopulationTooSmall,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InteractionLimit { limit } => {
                write!(f, "no stable configuration within {limit} interactions")
            }
            RunError::PopulationTooSmall => {
                write!(f, "population has fewer than two agents")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Drives executions of one compiled protocol.
#[derive(Clone, Copy, Debug)]
pub struct Simulator<'a> {
    proto: &'a CompiledProtocol,
}

impl<'a> Simulator<'a> {
    /// A simulator for `proto`.
    pub fn new(proto: &'a CompiledProtocol) -> Self {
        Simulator { proto }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &'a CompiledProtocol {
        self.proto
    }

    /// Run a count-vector population until `criterion` reports stability,
    /// without observation.
    pub fn run<S, C>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        S: PairScheduler,
        C: StabilityCriterion,
    {
        self.run_observed(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &mut NullObserver,
        )
    }

    /// Run a count-vector population until stability, reporting every
    /// interaction to `observer`.
    pub fn run_observed<S, C, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        S: PairScheduler,
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        if pop.num_agents() < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let mut interactions: u64 = 0;
        let mut effective: u64 = 0;
        while interactions < max_interactions {
            let (p, q) = scheduler.select_pair(pop);
            let (p2, q2) = self.proto.delta(p, q);
            interactions += 1;
            if p2 == p && q2 == q {
                observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
                continue;
            }
            pop.apply(p, q, p2, q2);
            effective += 1;
            observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
            if criterion.is_stable(self.proto, pop.counts()) {
                return Ok(RunResult {
                    interactions,
                    effective_interactions: effective,
                });
            }
        }
        Err(RunError::InteractionLimit {
            limit: max_interactions,
        })
    }

    /// Run a per-agent population until stability (on its count
    /// projection), reporting every interaction to `observer`.
    pub fn run_agents_observed<S, C, O>(
        &self,
        pop: &mut AgentPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
        observer: &mut O,
    ) -> Result<RunResult, RunError>
    where
        S: AgentScheduler,
        C: StabilityCriterion,
        O: Observer,
    {
        if criterion.is_stable(self.proto, pop.counts()) {
            return Ok(RunResult {
                interactions: 0,
                effective_interactions: 0,
            });
        }
        if pop.num_agents() < 2 {
            return Err(RunError::PopulationTooSmall);
        }
        let mut interactions: u64 = 0;
        let mut effective: u64 = 0;
        while interactions < max_interactions {
            let (i, j) = scheduler.select_agents(pop);
            let (p, q, p2, q2) = pop.interact(self.proto, i, j);
            interactions += 1;
            let changed = p2 != p || q2 != q;
            if changed {
                effective += 1;
            }
            observer.on_interaction(interactions, p, q, p2, q2, pop.counts());
            if changed && criterion.is_stable(self.proto, pop.counts()) {
                return Ok(RunResult {
                    interactions,
                    effective_interactions: effective,
                });
            }
        }
        Err(RunError::InteractionLimit {
            limit: max_interactions,
        })
    }

    /// Run a per-agent population without observation.
    pub fn run_agents<S, C>(
        &self,
        pop: &mut AgentPopulation,
        scheduler: &mut S,
        criterion: &C,
        max_interactions: u64,
    ) -> Result<RunResult, RunError>
    where
        S: AgentScheduler,
        C: StabilityCriterion,
    {
        self.run_agents_observed(
            pop,
            scheduler,
            criterion,
            max_interactions,
            &mut NullObserver,
        )
    }

    /// Perform exactly `steps` interactions (regardless of stability) on a
    /// count population, reporting each to `observer`. Useful for warm-up
    /// and for protocols without a stability notion.
    pub fn run_fixed<S, O>(
        &self,
        pop: &mut CountPopulation,
        scheduler: &mut S,
        steps: u64,
        observer: &mut O,
    ) where
        S: PairScheduler,
        O: Observer,
    {
        for step in 1..=steps {
            let (p, q) = scheduler.select_pair(pop);
            let (p2, q2) = self.proto.delta(p, q);
            if p2 != p || q2 != q {
                pop.apply(p, q, p2, q2);
            }
            observer.on_interaction(step, p, q, p2, q2, pop.counts());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::UniformRandomScheduler;
    use crate::spec::ProtocolSpec;
    use crate::stability::{Never, Silent};

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn epidemic_stabilises_everyone_infected() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 64);
        pop.set_count(s, 63);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(11);
        let res = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 10_000_000)
            .unwrap();
        assert_eq!(pop.count(i), 64);
        // Coupon-collector-like: needs at least n - 1 infections.
        assert!(res.effective_interactions == 63);
        assert!(res.interactions >= 63);
    }

    #[test]
    fn already_stable_returns_zero() {
        let p = epidemic();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 5);
        pop.set_count(p.initial_state(), 0);
        pop.set_count(i, 5);
        let mut sched = UniformRandomScheduler::from_seed(0);
        let res = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 100)
            .unwrap();
        assert_eq!(res.interactions, 0);
    }

    #[test]
    fn limit_is_reported() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 1000);
        pop.set_count(s, 999);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Silent, 5)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: 5 });
    }

    #[test]
    fn too_small_population_errors() {
        let p = epidemic();
        let mut pop = CountPopulation::new(&p, 1);
        let mut sched = UniformRandomScheduler::from_seed(2);
        // A single agent can never interact; with a never-satisfied
        // criterion the simulator must report the population as too small
        // rather than spinning.
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Never, 5)
            .unwrap_err();
        assert_eq!(err, RunError::PopulationTooSmall);
    }

    #[test]
    fn agent_and_count_representations_agree_in_distribution() {
        // Same protocol, same seed policy; expect identical *final* states
        // and statistically indistinguishable interaction counts. Here we
        // only check final-state agreement per run.
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        for seed in 0..10 {
            let mut cpop = CountPopulation::new(&p, 30);
            cpop.set_count(s, 29);
            cpop.set_count(i, 1);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run(&mut cpop, &mut sched, &Silent, 1_000_000)
                .unwrap();

            let mut apop = AgentPopulation::new(&p, 30);
            apop.set_state(0, i);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            Simulator::new(&p)
                .run_agents(&mut apop, &mut sched, &Silent, 1_000_000)
                .unwrap();

            assert_eq!(cpop.count(i), 30);
            assert_eq!(apop.count(i), 30);
        }
    }

    #[test]
    fn run_fixed_performs_exact_step_count() {
        let p = epidemic();
        let s = p.state_by_name("S").unwrap();
        let i = p.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(&p, 10);
        pop.set_count(s, 9);
        pop.set_count(i, 1);
        let mut sched = UniformRandomScheduler::from_seed(4);
        let mut seen = 0u64;
        struct Counter<'a>(&'a mut u64);
        impl crate::observer::Observer for Counter<'_> {
            fn on_interaction(
                &mut self,
                _s: u64,
                _p: crate::protocol::StateId,
                _q: crate::protocol::StateId,
                _p2: crate::protocol::StateId,
                _q2: crate::protocol::StateId,
                _c: &[u64],
            ) {
                *self.0 += 1;
            }
        }
        Simulator::new(&p).run_fixed(&mut pop, &mut sched, 123, &mut Counter(&mut seen));
        assert_eq!(seen, 123);
    }

    #[test]
    fn never_criterion_always_hits_limit() {
        let p = epidemic();
        let mut pop = CountPopulation::new(&p, 10);
        let mut sched = UniformRandomScheduler::from_seed(4);
        let err = Simulator::new(&p)
            .run(&mut pop, &mut sched, &Never, 50)
            .unwrap_err();
        assert_eq!(err, RunError::InteractionLimit { limit: 50 });
    }
}
