//! Execution observers.
//!
//! An [`Observer`] receives every interaction the simulator performs. The
//! hook is generic and monomorphised, so the no-op [`NullObserver`]
//! vanishes from the hot loop entirely. Observers power the paper's
//! Figure 4 (interactions per *i-th grouping*: the simulator watches the
//! count of `g_k` — each increment marks the completion of one full set
//! `g_1..g_k`) and the trace renderings of Figures 1–2.

use crate::protocol::StateId;

/// Why the batch kernel handed a stretch of the run to the exact leap
/// kernel. Reported through [`Observer::on_batch_fallback`] and tallied
/// in `engine.batch_fallbacks`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// Some reactant of an enabled rule is at or below the safety
    /// threshold: a leap could plausibly drive its count negative, and
    /// low-count dynamics are where tau-leaping's error concentrates.
    LowCount,
    /// The tau-selection bound made the expected leap smaller than the
    /// configured minimum batch — exact stepping is cheaper than drawing
    /// a degenerate multinomial.
    SmallLeap,
    /// The stability tracker reports the configuration within the
    /// configured number of violated constraints of stability; terminal
    /// behaviour must be exact.
    NearConvergence,
    /// Repeated tau-halving could not find a leap whose drawn firings
    /// keep every count non-negative.
    Overdraw,
}

/// A population-membership change applied between interactions by a
/// dynamics layer (e.g. `pp-topo`'s churn engine). Reported through
/// [`Observer::on_lifecycle`]; the engine itself never emits these — it
/// only defines the vocabulary so observers (trace recorders, telemetry)
/// can witness churn without the dynamics layer knowing about them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleKind {
    /// An agent joined the population (in the reported state).
    Join,
    /// An agent left gracefully (its state is reported for accounting).
    Leave,
    /// An agent crashed (semantically identical to a leave for the
    /// population; distinguished for telemetry and trace analysis).
    Crash,
}

impl LifecycleKind {
    /// Stable wire code (used by the trace format).
    pub fn code(self) -> u64 {
        match self {
            LifecycleKind::Join => 0,
            LifecycleKind::Leave => 1,
            LifecycleKind::Crash => 2,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(LifecycleKind::Join),
            1 => Some(LifecycleKind::Leave),
            2 => Some(LifecycleKind::Crash),
            _ => None,
        }
    }

    /// Lower-case label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            LifecycleKind::Join => "join",
            LifecycleKind::Leave => "leave",
            LifecycleKind::Crash => "crash",
        }
    }
}

/// Receives interaction events from the simulator.
pub trait Observer {
    /// Called after interaction number `step` (1-based) has been applied.
    ///
    /// `(p, q) → (p2, q2)` is the transition performed (possibly the
    /// identity) and `counts` is the configuration *after* the interaction.
    fn on_interaction(
        &mut self,
        step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        counts: &[u64],
    );

    /// Called by the leap kernel ([`crate::simulator::Simulator::run_leap`])
    /// after it skips a maximal run of `skipped ≥ 1` consecutive identity
    /// interactions in closed form. `last_step` is the (1-based)
    /// interaction number of the last skipped identity, and `counts` is
    /// the configuration — unchanged throughout the run.
    ///
    /// The naive kernel never calls this hook (it reports identities one
    /// by one through [`Observer::on_interaction`]). Because the counts are
    /// constant across the whole run, any per-step quantity an observer
    /// derives from the configuration is closed-form inside the run —
    /// [`TrajectorySampler`] reconstructs its period-boundary samples this
    /// way, so it works under both kernels. The default implementation
    /// does nothing.
    #[inline(always)]
    fn on_identity_run(&mut self, _last_step: u64, _skipped: u64, _counts: &[u64]) {}

    /// Called by the batch kernel
    /// ([`crate::simulator::Simulator::run_batch`]) after applying one
    /// tau-leap of `tau ≥ 1` scheduler interactions, of which `effective`
    /// were state-changing rule firings. `last_step` is the (1-based)
    /// cumulative interaction number of the last interaction in the leap,
    /// and `counts` is the configuration *after* the whole leap.
    ///
    /// Unlike [`Observer::on_interaction`] / [`Observer::on_identity_run`]
    /// (under which an observer can reconstruct every intermediate
    /// configuration exactly), a leap batch coalesces many firings whose
    /// interleaving was *not* sampled — per-step quantities inside a leap
    /// are only available to within the tau-leap approximation. Observers
    /// needing exact trajectories should run under the naive or leap
    /// kernel. The default implementation does nothing.
    #[inline(always)]
    fn on_leap_batch(&mut self, _last_step: u64, _tau: u64, _effective: u64, _counts: &[u64]) {}

    /// Called by the batch kernel when it falls back to exact leap
    /// stepping, with the trigger. The default implementation does
    /// nothing.
    #[inline(always)]
    fn on_batch_fallback(&mut self, _reason: FallbackReason) {}

    /// Called by a dynamics layer after a population-membership change
    /// (join/leave/crash) has been applied between interactions. `step`
    /// is the number of interactions performed so far (the event happens
    /// *after* interaction `step`, before `step + 1`), `state` is the
    /// joining agent's initial state or the departing agent's last state,
    /// and `counts` is the configuration *after* the change. The default
    /// implementation does nothing.
    #[inline(always)]
    fn on_lifecycle(&mut self, _step: u64, _kind: LifecycleKind, _state: StateId, _counts: &[u64]) {
    }
}

/// Observer that does nothing; compiles away.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn on_interaction(
        &mut self,
        _step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        _counts: &[u64],
    ) {
    }
}

/// Records the interaction number at which the count of a watched state
/// increases — for the k-partition protocol, watching `g_k` yields the
/// grouping-completion times `NI_1, NI_2, …` of the paper's Figure 4.
///
/// Note `#g_k` is non-decreasing for the paper's protocol (no rule consumes
/// `g_k`), so increments are exactly the grouping completions; the observer
/// nevertheless handles decrements correctly for other protocols by
/// recording only *new maxima*.
#[derive(Clone, Debug)]
pub struct GroupCompletionObserver {
    watched: StateId,
    max_seen: u64,
    completions: Vec<u64>,
}

impl GroupCompletionObserver {
    /// Watch increments of `watched` (e.g. the `g_k` state).
    pub fn new(watched: StateId) -> Self {
        GroupCompletionObserver {
            watched,
            max_seen: 0,
            completions: Vec::new(),
        }
    }

    /// `completions[i]` is the interaction count `NI_{i+1}` at which the
    /// watched state's count first reached `i + 1`.
    pub fn completions(&self) -> &[u64] {
        &self.completions
    }

    /// Consume the observer, returning the completion times.
    pub fn into_completions(self) -> Vec<u64> {
        self.completions
    }
}

impl Observer for GroupCompletionObserver {
    #[inline]
    fn on_interaction(
        &mut self,
        step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        counts: &[u64],
    ) {
        let c = counts[self.watched.index()];
        while self.max_seen < c {
            self.max_seen += 1;
            self.completions.push(step);
        }
    }

    /// Under the batch kernel the firings inside a leap are unordered, so
    /// a completion that happened mid-leap is attributed to the leap's
    /// last interaction — completion times carry the tau-leap resolution
    /// (at most one leap horizon of slack).
    #[inline]
    fn on_leap_batch(&mut self, last_step: u64, _tau: u64, _effective: u64, counts: &[u64]) {
        let c = counts[self.watched.index()];
        while self.max_seen < c {
            self.max_seen += 1;
            self.completions.push(last_step);
        }
    }
}

/// Records full configurations after every *state-changing* interaction
/// (identity interactions repeat the previous configuration and are
/// skipped), up to a cap. Used to render example executions.
#[derive(Clone, Debug)]
pub struct ConfigurationRecorder {
    /// Recorded count vectors, starting configuration excluded.
    configs: Vec<Vec<u64>>,
    /// Transitions `(step, p, q, p2, q2)` that produced each configuration.
    transitions: Vec<(u64, StateId, StateId, StateId, StateId)>,
    cap: usize,
    truncated: bool,
}

impl ConfigurationRecorder {
    /// Record at most `cap` configurations; further ones are counted but
    /// dropped (see [`Self::truncated`]).
    pub fn with_capacity(cap: usize) -> Self {
        ConfigurationRecorder {
            configs: Vec::new(),
            transitions: Vec::new(),
            cap,
            truncated: false,
        }
    }

    /// Recorded configurations (after each state-changing interaction).
    pub fn configs(&self) -> &[Vec<u64>] {
        &self.configs
    }

    /// The transition that produced each recorded configuration.
    pub fn transitions(&self) -> &[(u64, StateId, StateId, StateId, StateId)] {
        &self.transitions
    }

    /// Whether the cap was hit and later configurations were dropped.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl Observer for ConfigurationRecorder {
    fn on_interaction(
        &mut self,
        step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        counts: &[u64],
    ) {
        if p == p2 && q == q2 {
            return;
        }
        if self.configs.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.configs.push(counts.to_vec());
        self.transitions.push((step, p, q, p2, q2));
    }
}

/// Samples the full count vector every `period` interactions — the raw
/// material for trajectory plots (e.g. "#g_k over time", the ratchet the
/// paper's Lemma 4 describes). Sampling by period keeps memory
/// proportional to `interactions / period` regardless of run length.
///
/// Works under both kernels: the leap kernel reports skipped identity
/// runs through [`Observer::on_identity_run`], and since the counts are
/// constant across a run, the sampler emits every period boundary that
/// falls inside it in closed form — yielding the exact sample sequence
/// the naive kernel would have produced for the same trajectory.
#[derive(Clone, Debug)]
pub struct TrajectorySampler {
    period: u64,
    /// `(interaction, counts)` samples, in order.
    samples: Vec<(u64, Vec<u64>)>,
}

impl TrajectorySampler {
    /// Sample every `period` interactions (`period ≥ 1`).
    pub fn every(period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1");
        TrajectorySampler {
            period,
            samples: Vec::new(),
        }
    }

    /// The recorded `(interaction, counts)` samples.
    pub fn samples(&self) -> &[(u64, Vec<u64>)] {
        &self.samples
    }

    /// Project the trajectory onto one state's count.
    pub fn series_of(&self, s: StateId) -> Vec<(u64, u64)> {
        self.samples
            .iter()
            .map(|(t, c)| (*t, c[s.index()]))
            .collect()
    }
}

impl Observer for TrajectorySampler {
    #[inline]
    fn on_interaction(
        &mut self,
        step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        counts: &[u64],
    ) {
        if step % self.period == 0 {
            self.samples.push((step, counts.to_vec()));
        }
    }

    #[inline]
    fn on_identity_run(&mut self, last_step: u64, skipped: u64, counts: &[u64]) {
        // The run covers steps (last_step - skipped, last_step], all with
        // the same configuration; emit each period boundary inside it.
        let start = last_step - skipped + 1;
        let mut t = start.div_ceil(self.period) * self.period;
        while t <= last_step {
            self.samples.push((t, counts.to_vec()));
            t += self.period;
        }
    }
}

/// Chains two observers.
#[derive(Clone, Debug, Default)]
pub struct Chain<A, B>(
    /// First observer (called first).
    pub A,
    /// Second observer.
    pub B,
);

impl<A: Observer, B: Observer> Observer for Chain<A, B> {
    #[inline]
    fn on_interaction(
        &mut self,
        step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        counts: &[u64],
    ) {
        self.0.on_interaction(step, p, q, p2, q2, counts);
        self.1.on_interaction(step, p, q, p2, q2, counts);
    }

    #[inline]
    fn on_identity_run(&mut self, last_step: u64, skipped: u64, counts: &[u64]) {
        self.0.on_identity_run(last_step, skipped, counts);
        self.1.on_identity_run(last_step, skipped, counts);
    }

    #[inline]
    fn on_leap_batch(&mut self, last_step: u64, tau: u64, effective: u64, counts: &[u64]) {
        self.0.on_leap_batch(last_step, tau, effective, counts);
        self.1.on_leap_batch(last_step, tau, effective, counts);
    }

    #[inline]
    fn on_batch_fallback(&mut self, reason: FallbackReason) {
        self.0.on_batch_fallback(reason);
        self.1.on_batch_fallback(reason);
    }

    #[inline]
    fn on_lifecycle(&mut self, step: u64, kind: LifecycleKind, state: StateId, counts: &[u64]) {
        self.0.on_lifecycle(step, kind, state, counts);
        self.1.on_lifecycle(step, kind, state, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_completion_records_new_maxima_once() {
        let mut obs = GroupCompletionObserver::new(StateId(0));
        let s = StateId(1);
        obs.on_interaction(1, s, s, s, s, &[0, 2]);
        obs.on_interaction(2, s, s, s, s, &[1, 1]); // first completion
        obs.on_interaction(3, s, s, s, s, &[1, 1]); // no change
        obs.on_interaction(4, s, s, s, s, &[0, 2]); // dip (hypothetical)
        obs.on_interaction(5, s, s, s, s, &[1, 1]); // not a new max
        obs.on_interaction(6, s, s, s, s, &[3, 0]); // jumps by two
        assert_eq!(obs.completions(), &[2, 6, 6]);
    }

    #[test]
    fn recorder_skips_identities_and_caps() {
        let mut rec = ConfigurationRecorder::with_capacity(2);
        let a = StateId(0);
        let b = StateId(1);
        rec.on_interaction(1, a, a, a, a, &[2, 0]); // identity: skipped
        rec.on_interaction(2, a, a, b, b, &[0, 2]);
        rec.on_interaction(3, b, b, a, a, &[2, 0]);
        rec.on_interaction(4, a, a, b, b, &[0, 2]); // over cap
        assert_eq!(rec.configs().len(), 2);
        assert!(rec.truncated());
        assert_eq!(rec.transitions()[0].0, 2);
    }

    #[test]
    fn trajectory_sampler_periods() {
        let mut t = TrajectorySampler::every(3);
        let s = StateId(0);
        for step in 1..=10 {
            t.on_interaction(step, s, s, s, s, &[step, 0]);
        }
        let steps: Vec<u64> = t.samples().iter().map(|(st, _)| *st).collect();
        assert_eq!(steps, vec![3, 6, 9]);
        assert_eq!(t.series_of(StateId(0)), vec![(3, 3), (6, 6), (9, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_rejected() {
        TrajectorySampler::every(0);
    }

    /// Identity runs reported by the leap kernel yield exactly the samples
    /// the naive kernel would have taken at the same steps.
    #[test]
    fn trajectory_sampler_closed_form_identity_runs() {
        let mut t = TrajectorySampler::every(3);
        let s = StateId(0);
        // Effective interaction at step 1, then identities at 2..=8
        // reported as one leap run, then an effective one at step 9.
        t.on_interaction(1, s, s, StateId(1), s, &[5, 1]);
        t.on_identity_run(8, 7, &[5, 1]);
        t.on_interaction(9, s, s, StateId(1), s, &[4, 2]);
        let steps: Vec<u64> = t.samples().iter().map(|(st, _)| *st).collect();
        assert_eq!(steps, vec![3, 6, 9]);
        // Boundary cases: a run whose start is itself a boundary, and one
        // containing no boundary at all.
        let mut t = TrajectorySampler::every(4);
        t.on_identity_run(4, 1, &[1, 0]); // covers exactly step 4
        t.on_identity_run(7, 2, &[1, 0]); // covers 6..=7: no boundary
        t.on_identity_run(16, 9, &[1, 0]); // covers 8..=16: boundaries 8, 12, 16
        let steps: Vec<u64> = t.samples().iter().map(|(st, _)| *st).collect();
        assert_eq!(steps, vec![4, 8, 12, 16]);
    }

    #[test]
    fn chain_calls_both() {
        let mut chained = Chain(
            GroupCompletionObserver::new(StateId(0)),
            ConfigurationRecorder::with_capacity(8),
        );
        let a = StateId(0);
        let b = StateId(1);
        chained.on_interaction(1, b, b, a, a, &[2, 0]);
        assert_eq!(chained.0.completions(), &[1, 1]);
        assert_eq!(chained.1.configs().len(), 1);
    }
}
