//! Struct-of-arrays **trial fleets**: hundreds of batch-kernel trials of
//! the same cell advanced in lockstep.
//!
//! A fleet lays every trial's count vector out in one contiguous
//! trial-major arena (`trials × |Q|` words — a few KiB for hundreds of
//! trials of a |Q| ≈ 22 protocol, which sits comfortably in L1/L2), with
//! parallel arrays for the per-trial RNGs, counters, and completion
//! status, and one shared [`BatchCore`] and [`Scratch`]. The round-robin
//! driver gives each still-active trial one [`BatchTrial::step`] per
//! sweep, so the workload touches the arena sequentially instead of
//! chasing per-trial heap allocations.
//!
//! Each trial runs **the same per-trial step code** as
//! [`crate::simulator::Simulator::run_batch`], so for a given seed a
//! fleet member's result is bit-identical to a scalar `run_batch` of that
//! seed — interleaving trials only changes which trial's RNG is consumed
//! when, never the per-trial stream. Tests pin this equivalence, which is
//! what lets the sweep's journaled scalar path and the fleet fan-out path
//! produce interchangeable results.

use crate::batch::{BatchConfig, BatchCore, BatchTrial, Scratch, StepOutcome};
use crate::observer::{FallbackReason, Observer};
use crate::protocol::{CompiledProtocol, StateId};
use crate::scheduler::UniformRandomScheduler;
use crate::simulator::{RunError, RunResult};
use crate::stability::StabilityCriterion;

/// Outcome of a fleet run: one result per seed (same order), plus the
/// fleet-wide batch-kernel tallies for telemetry.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Per-trial outcomes, indexed like the input seed slice.
    pub results: Vec<Result<RunResult, RunError>>,
    /// Tau-leaps applied across the whole fleet.
    pub leap_batches: u64,
    /// Batch→exact fallback transitions across the whole fleet.
    pub batch_fallbacks: u64,
    /// Total interactions across all trials, censored ones included.
    pub interactions: u64,
    /// Total effective interactions across all trials, censored included.
    pub effective_interactions: u64,
}

/// Tallies leaps and fallbacks across all trials of a fleet.
#[derive(Default)]
struct FleetTally {
    leap_batches: u64,
    batch_fallbacks: u64,
}

impl Observer for FleetTally {
    #[inline(always)]
    fn on_interaction(
        &mut self,
        _step: u64,
        _p: StateId,
        _q: StateId,
        _p2: StateId,
        _q2: StateId,
        _counts: &[u64],
    ) {
    }

    #[inline(always)]
    fn on_leap_batch(&mut self, _last_step: u64, _tau: u64, _effective: u64, _counts: &[u64]) {
        self.leap_batches += 1;
    }

    #[inline(always)]
    fn on_batch_fallback(&mut self, _reason: FallbackReason) {
        self.batch_fallbacks += 1;
    }
}

/// Run one batch-kernel trial per seed, all starting from
/// `initial_counts`, in struct-of-arrays lockstep.
///
/// Every trial's RNG stream, counters, and outcome are exactly those of a
/// scalar [`crate::simulator::Simulator::run_batch_configured`] with the
/// same seed (see the module docs); the fleet exists for throughput, not
/// for a different sampling scheme. Observation is limited to the
/// aggregate tallies in [`FleetSummary`] — per-interaction observers need
/// the scalar entry points.
pub fn run_batch_fleet<C: StabilityCriterion>(
    proto: &CompiledProtocol,
    initial_counts: &[u64],
    seeds: &[u64],
    criterion: &C,
    max_interactions: u64,
    cfg: &BatchConfig,
) -> FleetSummary {
    let m = proto.num_states();
    assert_eq!(initial_counts.len(), m, "initial counts must cover |Q|");
    let n: u64 = initial_counts.iter().sum();
    let trials = seeds.len();
    let mut tally = FleetTally::default();

    // Degenerate cells resolve without building the arena, mirroring the
    // scalar kernel's pre-loop checks.
    if criterion.is_stable(proto, initial_counts) {
        return FleetSummary {
            results: vec![
                Ok(RunResult {
                    interactions: 0,
                    effective_interactions: 0,
                });
                trials
            ],
            leap_batches: 0,
            batch_fallbacks: 0,
            interactions: 0,
            effective_interactions: 0,
        };
    }
    if n < 2 {
        return FleetSummary {
            results: vec![Err(RunError::PopulationTooSmall); trials],
            leap_batches: 0,
            batch_fallbacks: 0,
            interactions: 0,
            effective_interactions: 0,
        };
    }

    let core = BatchCore::compile(proto);
    let mut scratch = Scratch::new(&core);

    // Struct-of-arrays state: one contiguous counts arena (trial-major so
    // each trial's |Q| words are adjacent), plus parallel per-trial arrays.
    let mut arena: Vec<u64> = Vec::with_capacity(trials * m);
    for _ in 0..trials {
        arena.extend_from_slice(initial_counts);
    }
    let mut schedulers: Vec<UniformRandomScheduler> = seeds
        .iter()
        .map(|&s| UniformRandomScheduler::from_seed(s))
        .collect();
    let mut states: Vec<BatchTrial<'_>> = (0..trials)
        .map(|_| BatchTrial::new(proto, criterion, initial_counts))
        .collect();
    let mut results: Vec<Option<Result<RunResult, RunError>>> = vec![None; trials];
    let mut active: Vec<usize> = (0..trials).collect();
    let mut interactions_total: u64 = 0;
    let mut effective_total: u64 = 0;

    while !active.is_empty() {
        active.retain(|&t| {
            let counts = &mut arena[t * m..(t + 1) * m];
            let out = states[t].step(
                proto,
                &core,
                counts,
                n,
                schedulers[t].rng_mut(),
                max_interactions,
                cfg,
                &mut scratch,
                &mut tally,
            );
            match out {
                StepOutcome::Continue => true,
                StepOutcome::Stable => {
                    interactions_total += states[t].interactions;
                    effective_total += states[t].effective;
                    results[t] = Some(Ok(RunResult {
                        interactions: states[t].interactions,
                        effective_interactions: states[t].effective,
                    }));
                    false
                }
                StepOutcome::Limit => {
                    interactions_total += states[t].interactions;
                    effective_total += states[t].effective;
                    results[t] = Some(Err(RunError::InteractionLimit {
                        limit: max_interactions,
                    }));
                    false
                }
            }
        });
    }

    FleetSummary {
        results: results
            .into_iter()
            .map(|r| r.expect("every trial resolved"))
            .collect(),
        leap_batches: tally.leap_batches,
        batch_fallbacks: tally.batch_fallbacks,
        interactions: interactions_total,
        effective_interactions: effective_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::CountPopulation;
    use crate::simulator::Simulator;
    use crate::spec::ProtocolSpec;
    use crate::stability::{Never, Silent};

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    #[test]
    fn fleet_matches_scalar_run_batch_bitwise() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let n = 2000u64;
        let initial = {
            let mut c = vec![0u64; proto.num_states()];
            c[s.index()] = n - 1;
            c[i.index()] = 1;
            c
        };
        let seeds: Vec<u64> = (0..17).map(|t| 9000 + t).collect();
        let cfg = BatchConfig::default();
        let fleet = run_batch_fleet(&proto, &initial, &seeds, &Silent, u64::MAX, &cfg);
        for (idx, &seed) in seeds.iter().enumerate() {
            let mut pop = CountPopulation::new(&proto, n);
            pop.set_count(s, n - 1);
            pop.set_count(i, 1);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            let scalar = Simulator::new(&proto)
                .run_batch(&mut pop, &mut sched, &Silent, u64::MAX)
                .unwrap();
            assert_eq!(fleet.results[idx], Ok(scalar), "seed {seed}");
        }
        assert!(fleet.leap_batches > 0, "large cell must take leaps");
    }

    #[test]
    fn fleet_initially_stable_and_tiny_population() {
        let proto = epidemic();
        let i = proto.state_by_name("I").unwrap();
        let mut stable = vec![0u64; proto.num_states()];
        stable[i.index()] = 7;
        let out = run_batch_fleet(
            &proto,
            &stable,
            &[1, 2, 3],
            &Silent,
            1000,
            &BatchConfig::default(),
        );
        assert!(out.results.iter().all(|r| r
            == &Ok(RunResult {
                interactions: 0,
                effective_interactions: 0
            })));

        let mut lone = vec![0u64; proto.num_states()];
        lone[i.index()] = 1;
        let out = run_batch_fleet(
            &proto,
            &lone,
            &[1, 2],
            &Never,
            1000,
            &BatchConfig::default(),
        );
        assert!(out
            .results
            .iter()
            .all(|r| r == &Err(RunError::PopulationTooSmall)));
    }

    #[test]
    fn fleet_censors_at_the_limit() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut initial = vec![0u64; proto.num_states()];
        initial[s.index()] = 499;
        initial[i.index()] = 1;
        let out = run_batch_fleet(
            &proto,
            &initial,
            &[5, 6],
            &Silent,
            3,
            &BatchConfig::default(),
        );
        assert!(out
            .results
            .iter()
            .all(|r| r == &Err(RunError::InteractionLimit { limit: 3 })));
    }

    #[test]
    fn fleet_empty_seed_list() {
        let proto = epidemic();
        let s = proto.state_by_name("S").unwrap();
        let mut initial = vec![0u64; proto.num_states()];
        initial[s.index()] = 10;
        let out = run_batch_fleet(
            &proto,
            &initial,
            &[],
            &Silent,
            1000,
            &BatchConfig::default(),
        );
        assert!(out.results.is_empty());
    }
}
