//! Engine telemetry: shared metric handles and the [`TelemetryObserver`].
//!
//! Instrumentation goes through the existing [`crate::observer::Observer`]
//! hook rather than the simulator loops themselves, so the overhead story
//! is unchanged from before telemetry existed: run with
//! [`crate::observer::NullObserver`] and the instrumentation monomorphises
//! away; run with a [`TelemetryObserver`] and each event is a couple of
//! plain `u64` bumps — the shared atomics in [`EngineMetrics`] are touched
//! once per *run*, on flush, not per interaction.
//!
//! Metric names follow the workspace `layer.subsystem.metric` scheme:
//!
//! | name                            | kind      | meaning |
//! |---------------------------------|-----------|---------|
//! | `engine.runs`                   | counter   | simulator runs flushed |
//! | `engine.censored_runs`          | counter   | runs that hit the interaction cap |
//! | `engine.interactions`           | counter   | total interactions (incl. identities) |
//! | `engine.effective_interactions` | counter   | state-changing interactions |
//! | `engine.identity_run_len`       | histogram | lengths of maximal identity runs |
//! | `engine.stability.rescans`      | counter   | O(&#124;Q&#124;) fallback stability rescans |
//! | `engine.leap_batches`           | counter   | tau-leaps applied by the batch kernel |
//! | `engine.batch_fallbacks`        | counter   | batch→exact fallback transitions |

use crate::observer::{FallbackReason, Observer};
use crate::protocol::StateId;
use pp_telemetry::{Counter, Histogram, LocalHistogram, Registry};
use std::sync::{Arc, OnceLock};

/// Shared handles to the engine's metric series in one registry.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// Simulator runs whose telemetry has been flushed.
    pub runs: Arc<Counter>,
    /// Runs that ended at the interaction cap instead of stabilising.
    pub censored_runs: Arc<Counter>,
    /// Total interactions performed, identities included.
    pub interactions: Arc<Counter>,
    /// Interactions that changed at least one agent's state.
    pub effective_interactions: Arc<Counter>,
    /// Histogram of maximal identity-run lengths.
    pub identity_run_len: Arc<Histogram>,
    /// Full-rescan stability checks (the O(|Q|) tracker fallback).
    pub stability_rescans: Arc<Counter>,
    /// Tau-leap batches applied by the batch kernel.
    pub leap_batches: Arc<Counter>,
    /// Batch-kernel fallbacks to exact leap stepping (all reasons).
    pub batch_fallbacks: Arc<Counter>,
}

impl EngineMetrics {
    /// Resolve (registering on first use) the engine series in `reg`.
    pub fn register_in(reg: &Registry) -> Self {
        EngineMetrics {
            runs: reg.counter("engine.runs"),
            censored_runs: reg.counter("engine.censored_runs"),
            interactions: reg.counter("engine.interactions"),
            effective_interactions: reg.counter("engine.effective_interactions"),
            identity_run_len: reg.histogram("engine.identity_run_len"),
            stability_rescans: reg.counter("engine.stability.rescans"),
            leap_batches: reg.counter("engine.leap_batches"),
            batch_fallbacks: reg.counter("engine.batch_fallbacks"),
        }
    }
}

/// The engine's series in the process-wide registry.
pub fn engine_metrics() -> &'static EngineMetrics {
    static GLOBAL: OnceLock<EngineMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| EngineMetrics::register_in(pp_telemetry::global()))
}

/// Observer that tallies interaction statistics for one run and flushes
/// them into an [`EngineMetrics`] when dropped (or on [`Self::flush`]).
///
/// Works under both kernels: the leap kernel reports skipped identity
/// runs through `on_identity_run`, while under the naive kernel the
/// observer coalesces consecutive per-interaction identities into runs
/// itself, so `engine.identity_run_len` means the same thing either way.
/// Observers never influence scheduling or RNG state, so attaching this
/// leaves trajectories bit-identical.
#[derive(Debug)]
pub struct TelemetryObserver {
    target: EngineMetrics,
    interactions: u64,
    effective: u64,
    /// Length of the in-progress identity run (naive kernel only).
    open_run: u64,
    identity_runs: LocalHistogram,
    leap_batches: u64,
    batch_fallbacks: u64,
    censored: bool,
}

impl TelemetryObserver {
    /// Observer flushing into the global registry's engine series.
    pub fn new() -> Self {
        Self::with_target(engine_metrics().clone())
    }

    /// Observer flushing into `reg` (tests use a private registry for
    /// exact counts).
    pub fn in_registry(reg: &Registry) -> Self {
        Self::with_target(EngineMetrics::register_in(reg))
    }

    fn with_target(target: EngineMetrics) -> Self {
        TelemetryObserver {
            target,
            interactions: 0,
            effective: 0,
            open_run: 0,
            identity_runs: LocalHistogram::new(),
            leap_batches: 0,
            batch_fallbacks: 0,
            censored: false,
        }
    }

    /// Mark this run as censored (hit its interaction cap without
    /// stabilising); counted in `engine.censored_runs` on flush.
    pub fn mark_censored(&mut self) {
        self.censored = true;
    }

    /// Interactions tallied so far in this run.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Effective (state-changing) interactions tallied so far.
    pub fn effective_interactions(&self) -> u64 {
        self.effective
    }

    /// Push the local tallies into the shared metrics and reset them.
    /// Called automatically on drop; calling twice is harmless (the
    /// second flush contributes only what accrued in between).
    pub fn flush(&mut self) {
        if self.open_run > 0 {
            self.identity_runs.record(self.open_run);
            self.open_run = 0;
        }
        if self.interactions == 0 && self.identity_runs.is_empty() && !self.censored {
            return;
        }
        self.target.runs.inc();
        if self.censored {
            self.target.censored_runs.inc();
            self.censored = false;
        }
        self.target.interactions.add(self.interactions);
        self.target.effective_interactions.add(self.effective);
        self.target.identity_run_len.merge(&self.identity_runs);
        self.target.leap_batches.add(self.leap_batches);
        self.target.batch_fallbacks.add(self.batch_fallbacks);
        self.interactions = 0;
        self.effective = 0;
        self.leap_batches = 0;
        self.batch_fallbacks = 0;
        self.identity_runs = LocalHistogram::new();
    }
}

impl Default for TelemetryObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TelemetryObserver {
    fn drop(&mut self) {
        self.flush();
    }
}

impl Observer for TelemetryObserver {
    #[inline]
    fn on_interaction(
        &mut self,
        _step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        _counts: &[u64],
    ) {
        self.interactions += 1;
        if p == p2 && q == q2 {
            // Naive kernel reporting one identity at a time: extend the run.
            self.open_run += 1;
        } else {
            if self.open_run > 0 {
                self.identity_runs.record(self.open_run);
                self.open_run = 0;
            }
            self.effective += 1;
        }
    }

    #[inline]
    fn on_identity_run(&mut self, _last_step: u64, skipped: u64, _counts: &[u64]) {
        // Leap kernel: the whole maximal run arrives in one call.
        self.interactions += skipped;
        self.identity_runs.record(skipped);
    }

    #[inline]
    fn on_leap_batch(&mut self, _last_step: u64, tau: u64, effective: u64, _counts: &[u64]) {
        // Batch kernel: one tau-leap covers `tau` interactions, of which
        // `effective` fired rules. The identity mass inside a leap is not
        // a *maximal* identity run, so it deliberately stays out of
        // `engine.identity_run_len`.
        self.interactions += tau;
        self.effective += effective;
        self.leap_batches += 1;
    }

    #[inline]
    fn on_batch_fallback(&mut self, _reason: FallbackReason) {
        self.batch_fallbacks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::CountPopulation;
    use crate::scheduler::UniformRandomScheduler;
    use crate::simulator::Simulator;
    use crate::spec::ProtocolSpec;
    use crate::stability::Silent;
    use pp_telemetry::{MetricData, Snapshot};

    fn epidemic() -> crate::protocol::CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    fn seeded_pop(proto: &crate::protocol::CompiledProtocol, n: u64) -> CountPopulation {
        let s = proto.state_by_name("S").unwrap();
        let i = proto.state_by_name("I").unwrap();
        let mut pop = CountPopulation::new(proto, n);
        pop.set_count(s, n - 1);
        pop.set_count(i, 1);
        pop
    }

    #[test]
    fn naive_run_tallies_match_run_result() {
        let proto = epidemic();
        let reg = Registry::new();
        let mut obs = TelemetryObserver::in_registry(&reg);
        let mut pop = seeded_pop(&proto, 40);
        let mut sched = UniformRandomScheduler::from_seed(11);
        let res = Simulator::new(&proto)
            .run_observed(&mut pop, &mut sched, &Silent, 1_000_000, &mut obs)
            .unwrap();
        obs.flush();
        let snap = Snapshot::capture(&reg);
        assert_eq!(snap.value("engine.interactions"), Some(res.interactions));
        assert_eq!(
            snap.value("engine.effective_interactions"),
            Some(res.effective_interactions)
        );
        assert_eq!(snap.value("engine.runs"), Some(1));
        assert_eq!(snap.value("engine.censored_runs"), Some(0));
    }

    #[test]
    fn leap_and_naive_tallies_are_each_internally_consistent() {
        // The two kernels share a law but not a sample path, so totals
        // differ per seed. What must hold for both: the observer's
        // tallies reconcile with the RunResult, interactions split into
        // effective + identity-histogram mass, and — for the epidemic —
        // effective interactions are exactly n − 1 on every path (each
        // one infects exactly one agent).
        let proto = epidemic();
        let n = 64u64;
        for (seed, leap) in [(3u64, false), (3, true), (17, false), (17, true)] {
            let reg = Registry::new();
            let mut obs = TelemetryObserver::in_registry(&reg);
            let mut pop = seeded_pop(&proto, n);
            let mut sched = UniformRandomScheduler::from_seed(seed);
            let sim = Simulator::new(&proto);
            let res = if leap {
                sim.run_leap_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut obs)
            } else {
                sim.run_observed(&mut pop, &mut sched, &Silent, 10_000_000, &mut obs)
            }
            .unwrap();
            drop(obs); // flush via Drop
            let snap = Snapshot::capture(&reg);
            let ctx = format!("seed {seed}, leap {leap}");
            assert_eq!(
                snap.value("engine.interactions"),
                Some(res.interactions),
                "{ctx}"
            );
            assert_eq!(
                snap.value("engine.effective_interactions"),
                Some(res.effective_interactions),
                "{ctx}"
            );
            assert_eq!(
                snap.value("engine.effective_interactions"),
                Some(n - 1),
                "{ctx}"
            );
            let MetricData::Histogram { sum, .. } =
                &snap.get("engine.identity_run_len").unwrap().data
            else {
                panic!("expected histogram ({ctx})");
            };
            assert_eq!(res.effective_interactions + sum, res.interactions, "{ctx}");
        }
    }

    #[test]
    fn censored_runs_are_counted() {
        let proto = epidemic();
        let reg = Registry::new();
        let mut obs = TelemetryObserver::in_registry(&reg);
        let mut pop = seeded_pop(&proto, 64);
        let mut sched = UniformRandomScheduler::from_seed(5);
        let res = Simulator::new(&proto).run_observed(&mut pop, &mut sched, &Silent, 3, &mut obs);
        assert!(res.is_err());
        obs.mark_censored();
        obs.flush();
        let snap = Snapshot::capture(&reg);
        assert_eq!(snap.value("engine.censored_runs"), Some(1));
        assert_eq!(snap.value("engine.interactions"), Some(3));
    }

    #[test]
    fn flush_is_idempotent_and_drop_flushes() {
        let reg = Registry::new();
        let mut obs = TelemetryObserver::in_registry(&reg);
        let a = StateId(0);
        let b = StateId(1);
        obs.on_interaction(1, a, a, a, a, &[2, 0]); // identity
        obs.on_interaction(2, a, a, b, b, &[0, 2]); // effective
        obs.flush();
        obs.flush(); // no-op
        drop(obs); // also a no-op
        let snap = Snapshot::capture(&reg);
        assert_eq!(snap.value("engine.interactions"), Some(2));
        assert_eq!(snap.value("engine.effective_interactions"), Some(1));
        assert_eq!(snap.value("engine.runs"), Some(1));
    }

    #[test]
    fn trailing_identity_run_is_recorded_on_flush() {
        let reg = Registry::new();
        let mut obs = TelemetryObserver::in_registry(&reg);
        let a = StateId(0);
        for step in 1..=5 {
            obs.on_interaction(step, a, a, a, a, &[2]);
        }
        drop(obs);
        let snap = Snapshot::capture(&reg);
        let MetricData::Histogram {
            count, sum, max, ..
        } = &snap.get("engine.identity_run_len").unwrap().data
        else {
            panic!("expected histogram");
        };
        assert_eq!((*count, *sum, *max), (1, 5, 5));
    }

    #[test]
    fn rescan_tracker_counts_rescans() {
        use crate::stability::StabilityCriterion;
        let proto = epidemic();
        let before = engine_metrics().stability_rescans.get();
        let counts = [2u64, 2];
        let mut tracker = Silent.tracker(&proto, &counts);
        for _ in 0..7 {
            tracker.is_stable(&proto, &counts);
        }
        assert!(engine_metrics().stability_rescans.get() >= before + 7);
    }
}
