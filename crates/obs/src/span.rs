//! Structured spans with ambient parents.
//!
//! A span is an interval of work with an identity: a process-unique id, a
//! parent span id (0 for roots), a static name, and an optional free-form
//! label. Opening a span writes a [`RecordKind::SpanOpen`] record into the
//! flight recorder and pushes the span onto a thread-local stack, so
//! spans opened lower in the call tree pick up their parent *ambiently* —
//! no plumbing through signatures. Dropping the guard pops the stack,
//! writes the [`RecordKind::SpanClose`] record, and feeds the duration
//! into the `obs.span.micros{span=...}` histogram of the pp-telemetry
//! registry, so `/metrics` and the flight recorder can't disagree about
//! where time went.
//!
//! Work that hops threads (rayon workers, `thread::scope`) loses the
//! thread-local stack; hand the parent across explicitly with
//! [`span_with_parent`] or re-establish it with [`with_parent`].

use crate::recorder::{now_micros, recorder, RecordKind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique span identity (never 0; 0 encodes "no parent").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static AMBIENT: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The innermost span open on this thread, if any.
pub fn current_span() -> Option<SpanId> {
    AMBIENT.with(|stack| stack.borrow().last().copied().map(SpanId))
}

/// RAII guard for one open span; closing (dropping) records the close
/// and the duration histogram sample.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    label: String,
    start: u64,
}

impl SpanGuard {
    fn open(name: &'static str, parent: u64, label: String) -> SpanGuard {
        let id = next_span_id();
        let start = now_micros();
        recorder().record(
            RecordKind::SpanOpen,
            id,
            parent,
            name,
            &label,
            start,
            start,
            0,
        );
        AMBIENT.with(|stack| stack.borrow_mut().push(id));
        SpanGuard {
            id,
            parent,
            name,
            label,
            start,
        }
    }

    /// This span's identity, for echoing to clients or handing across
    /// threads as an explicit parent.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Normally a plain pop; out-of-order drops (guards stored in
            // structs, early returns) degrade to a removal by value.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let end = now_micros();
        recorder().record(
            RecordKind::SpanClose,
            self.id,
            self.parent,
            self.name,
            &self.label,
            self.start,
            end,
            0,
        );
        pp_telemetry::global()
            .histogram_with("obs.span.micros", &[("span", self.name)])
            .record(end.saturating_sub(self.start));
    }
}

/// Open a span under the current thread's ambient parent.
pub fn span(name: &'static str) -> SpanGuard {
    span_labelled(name, "")
}

/// Open a labelled span under the current thread's ambient parent.
pub fn span_labelled(name: &'static str, label: &str) -> SpanGuard {
    let parent = current_span().map_or(0, |p| p.0);
    SpanGuard::open(name, parent, label.to_string())
}

/// Open a span under an explicit parent — the escape hatch for work that
/// crossed a thread boundary and lost the ambient stack.
pub fn span_with_parent(name: &'static str, parent: Option<SpanId>, label: &str) -> SpanGuard {
    SpanGuard::open(name, parent.map_or(0, |p| p.0), label.to_string())
}

/// Run `f` with `parent` installed as the ambient parent on this thread,
/// so spans `f` opens attach under it without explicit threading.
pub fn with_parent<R>(parent: SpanId, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            AMBIENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|stack| stack.borrow_mut().push(parent.0));
    let _pop = Pop;
    f()
}

/// Record a point event (with an integer payload) under the current
/// ambient span.
pub fn event(name: &'static str, value: u64) {
    event_labelled(name, "", value);
}

/// Record a labelled point event under the current ambient span.
pub fn event_labelled(name: &'static str, label: &str, value: u64) {
    let parent = current_span().map_or(0, |p| p.0);
    let at = now_micros();
    recorder().record(RecordKind::Event, 0, parent, name, label, at, at, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is shared by every test in the process, so these
    // assertions filter by the names they themselves wrote.
    #[test]
    fn nesting_assigns_ambient_parents() {
        let outer = span("test.outer");
        let inner = span_labelled("test.inner", "leaf");
        assert_eq!(current_span(), Some(inner.id()));
        let (outer_id, inner_id) = (outer.id().0, inner.id().0);
        drop(inner);
        assert_eq!(current_span(), Some(outer.id()));
        drop(outer);
        assert_eq!(current_span(), None);
        let snap = recorder().snapshot();
        let close = |id: u64| {
            snap.iter()
                .find(|r| r.kind == RecordKind::SpanClose && r.id == id)
                .unwrap()
                .clone()
        };
        assert_eq!(close(outer_id).parent, 0);
        assert_eq!(close(inner_id).parent, outer_id);
        assert_eq!(close(inner_id).label, "leaf");
    }

    #[test]
    fn with_parent_reattaches_across_threads() {
        let root = span("test.root");
        let root_id = root.id();
        let child_id = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    assert_eq!(current_span(), None); // fresh thread, no ambient
                    with_parent(root_id, || span("test.remote").id().0)
                })
                .join()
                .unwrap()
        });
        drop(root);
        let snap = recorder().snapshot();
        let child = snap
            .iter()
            .find(|r| r.kind == RecordKind::SpanClose && r.id == child_id)
            .unwrap();
        assert_eq!(child.parent, root_id.0);
    }

    #[test]
    fn events_attach_to_the_open_span() {
        let s = span("test.evt_host");
        event_labelled("test.evt", "x", 41);
        let host = s.id().0;
        drop(s);
        let snap = recorder().snapshot();
        let evt = snap
            .iter()
            .find(|r| r.kind == RecordKind::Event && r.name == "test.evt")
            .unwrap();
        assert_eq!(evt.parent, host);
        assert_eq!(evt.value, 41);
    }

    #[test]
    fn span_durations_land_in_the_registry() {
        drop(span("test.timed"));
        let snap = pp_telemetry::Snapshot::capture_global();
        let found = snap.metrics.iter().any(|m| {
            m.name == "obs.span.micros" && m.labels.iter().any(|(_, v)| v == "test.timed")
        });
        assert!(found, "obs.span.micros{{span=test.timed}} missing");
    }
}
