//! # pp-obs — structured spans and a lock-free flight recorder
//!
//! pp-telemetry answers "how much, in aggregate"; this crate answers
//! "what just happened, in order". It adds two primitives on top of the
//! registry:
//!
//! * **Spans** ([`span`], [`SpanGuard`]) — intervals of work with a
//!   process-unique id, a parent id (ambient via a thread-local stack, or
//!   explicit across thread hops), a name, and an optional label. Span
//!   durations also land in the `obs.span.micros{span=...}` histogram of
//!   the shared registry, so the `/metrics` exposition and the recorder
//!   agree.
//! * **The flight recorder** ([`FlightRecorder`], [`recorder`]) — a
//!   fixed-size ring of the most recent span/event records, written with
//!   O(1) atomic slot claims (per-slot seqlock, no writer-side lock on
//!   the publish path) and drained to NDJSON on demand (`GET /flight`),
//!   on SIGTERM (`pp-serve --flight-dump`), and on panic
//!   ([`install_panic_hook`]).
//!
//! Nothing here touches simulation hot loops: the engine's kernels remain
//! instrumented only through the `Observer` seam, and a disabled recorder
//! (capacity 0 via `PP_FLIGHT_CAPACITY=0`) turns every write into an
//! early-return no-op.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod recorder;
pub mod span;

pub use recorder::{
    default_dump_path, install_panic_hook, now_micros, recorder, set_dump_path, FlightRecorder,
    Record, RecordKind,
};
pub use span::{
    current_span, event, event_labelled, span, span_labelled, span_with_parent, with_parent,
    SpanGuard, SpanId,
};
