//! The flight recorder: a fixed-size, lock-free ring of recent records.
//!
//! Each write claims one global index with a single `fetch_add` and then
//! publishes into slot `index % capacity` under a per-slot seqlock, so a
//! write is O(1) atomic stores and never blocks another writer or a
//! reader. Readers ([`FlightRecorder::snapshot`]) never block writers
//! either: a slot caught mid-write fails its sequence re-check and is
//! skipped. The ring therefore always holds (a consistent view of) the
//! most recent `capacity` records, which is exactly the "what just
//! happened" evidence wanted after a panic or SIGTERM.
//!
//! The only lock in the module guards the name/label interner, taken when
//! a record is written (names come from a small fixed set, labels from
//! cell stems, so the critical section is a `BTreeMap` lookup) and once
//! per snapshot to clone the string table. The hot slot publish itself is
//! lock-free.

use pp_telemetry::json::Value;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Monotonic process clock: microseconds since the first call.
pub fn now_micros() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    start.elapsed().as_micros() as u64
}

/// What a ring slot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A point event with an attached integer value.
    Event,
    /// A span was opened (its close may still be pending — or never come,
    /// which after a crash is itself the interesting signal).
    SpanOpen,
    /// A span closed; carries both endpoints.
    SpanClose,
}

impl RecordKind {
    fn code(self) -> u64 {
        match self {
            RecordKind::Event => 0,
            RecordKind::SpanOpen => 1,
            RecordKind::SpanClose => 2,
        }
    }

    fn from_code(code: u64) -> Option<RecordKind> {
        match code {
            0 => Some(RecordKind::Event),
            1 => Some(RecordKind::SpanOpen),
            2 => Some(RecordKind::SpanClose),
            _ => None,
        }
    }

    /// Stable wire name used in the NDJSON dump.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Event => "event",
            RecordKind::SpanOpen => "span_open",
            RecordKind::SpanClose => "span",
        }
    }
}

/// One decoded record, as returned by [`FlightRecorder::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Global write index (total ring writes before this one); snapshot
    /// order and the `seq` field of the NDJSON line.
    pub seq: u64,
    /// Which kind of record this is.
    pub kind: RecordKind,
    /// Span id (0 for plain events, which belong to their parent span).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Interned record name, e.g. `serve.request`.
    pub name: String,
    /// Free-form label (cell stem, reason, ...); empty when absent.
    pub label: String,
    /// Event/open time, or span start, in [`now_micros`] ticks.
    pub start_micros: u64,
    /// Span end; equals `start_micros` for events and opens.
    pub end_micros: u64,
    /// Attached integer payload (events only; 0 otherwise).
    pub value: u64,
}

impl Record {
    /// Encode as one NDJSON line (no trailing newline). Integer-and-string
    /// JSON only, matching the workspace's export conventions.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("seq", Value::U64(self.seq)),
            ("kind", Value::Str(self.kind.as_str().into())),
            ("id", Value::U64(self.id)),
            ("parent", Value::U64(self.parent)),
            ("name", Value::Str(self.name.clone())),
            ("micros", Value::U64(self.start_micros)),
        ];
        if self.kind == RecordKind::SpanClose {
            pairs.push(("end_micros", Value::U64(self.end_micros)));
        }
        if self.kind == RecordKind::Event {
            pairs.push(("value", Value::U64(self.value)));
        }
        if !self.label.is_empty() {
            pairs.push(("label", Value::Str(self.label.clone())));
        }
        Value::obj(pairs)
    }
}

/// Slot sequence encoding: `0` = never written, `2i + 1` = write `i` in
/// progress, `2i + 2` = write `i` published.
const EMPTY: u64 = 0;

struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    id: AtomicU64,
    parent: AtomicU64,
    name: AtomicU64,
    label: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(EMPTY),
            kind: AtomicU64::new(0),
            id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            name: AtomicU64::new(0),
            label: AtomicU64::new(0),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

#[derive(Default)]
struct Interner {
    by_name: BTreeMap<String, u64>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u64 {
        if self.names.is_empty() {
            // Index 0 is the empty string so `0` can mean "no label".
            self.names.push(String::new());
        }
        if s.is_empty() {
            return 0;
        }
        if let Some(&idx) = self.by_name.get(s) {
            return idx;
        }
        let idx = self.names.len() as u64;
        self.names.push(s.to_string());
        self.by_name.insert(s.to_string(), idx);
        idx
    }
}

/// A fixed-size lock-free ring of recent [`Record`]s.
///
/// Capacity 0 disables the recorder entirely: writes become no-ops and
/// snapshots are empty. The process-wide instance ([`recorder`]) sizes
/// itself from `PP_FLIGHT_CAPACITY` (default 4096).
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    next: AtomicU64,
    interner: Mutex<Interner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("written", &self.next.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` records.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            interner: Mutex::new(Interner::default()),
        }
    }

    /// Ring capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether writes land anywhere.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Total records ever written (not capped by capacity).
    pub fn written(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Write one record. Lock-free except for name/label interning.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: RecordKind,
        id: u64,
        parent: u64,
        name: &str,
        label: &str,
        start_micros: u64,
        end_micros: u64,
        value: u64,
    ) {
        if self.slots.is_empty() {
            return;
        }
        let (name_idx, label_idx) = {
            let mut interner = self.interner.lock().unwrap();
            (interner.intern(name), interner.intern(label))
        };
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        // Per-slot seqlock publish: mark the slot as mid-write, store the
        // fields, then publish with the even sequence. The release fence
        // orders the odd mark before the field stores, so a reader that
        // observes any new field and then re-reads the sequence is
        // guaranteed to see the odd mark (or a later value) and discard.
        slot.seq.store(2 * index + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.name.store(name_idx, Ordering::Relaxed);
        slot.label.store(label_idx, Ordering::Relaxed);
        slot.start.store(start_micros, Ordering::Relaxed);
        slot.end.store(end_micros, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(2 * index + 2, Ordering::Release);
    }

    /// Consistent snapshot of every published record, oldest first.
    ///
    /// Non-destructive: the ring keeps recording. Slots caught mid-write
    /// (or overwritten between the two sequence reads) are skipped.
    pub fn snapshot(&self) -> Vec<Record> {
        let names: Vec<String> = self.interner.lock().unwrap().names.clone();
        let resolve = |idx: u64| -> String { names.get(idx as usize).cloned().unwrap_or_default() };
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == EMPTY || seq1 % 2 == 1 {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let id = slot.id.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let name = slot.name.load(Ordering::Relaxed);
            let label = slot.label.load(Ordering::Relaxed);
            let start = slot.start.load(Ordering::Relaxed);
            let end = slot.end.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            // The acquire fence keeps the re-read below from being hoisted
            // above the field loads; paired with the writer's release
            // fence it makes a torn read visible as a sequence change.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue;
            }
            let Some(kind) = RecordKind::from_code(kind) else {
                continue;
            };
            out.push(Record {
                seq: (seq1 - 2) / 2,
                kind,
                id,
                parent,
                name: resolve(name),
                label: resolve(label),
                start_micros: start,
                end_micros: end,
                value,
            });
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The snapshot as NDJSON (one record per line, trailing newline;
    /// empty string when the ring is empty or disabled).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for rec in self.snapshot() {
            out.push_str(&rec.to_json().encode());
            out.push('\n');
        }
        out
    }

    /// Dump the snapshot to `path` as NDJSON.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_ndjson())
    }
}

/// The process-wide recorder. Capacity comes from `PP_FLIGHT_CAPACITY`
/// on first use (default 4096; `0` disables recording).
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("PP_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(4096);
        FlightRecorder::with_capacity(capacity)
    })
}

static DUMP_OVERRIDE: OnceLock<std::path::PathBuf> = OnceLock::new();

/// Programmatic override for [`default_dump_path`] — how a binary's
/// `--flight-dump PATH` flag takes effect without mutating the process
/// environment. First caller wins; later calls are no-ops.
pub fn set_dump_path(path: impl Into<std::path::PathBuf>) {
    let _ = DUMP_OVERRIDE.set(path.into());
}

/// Where panic/SIGTERM dumps land: [`set_dump_path`]'s override if any,
/// else `PP_FLIGHT_DUMP` if set, else `pp-flight-<pid>.ndjson` in the
/// temp dir.
pub fn default_dump_path() -> std::path::PathBuf {
    if let Some(p) = DUMP_OVERRIDE.get() {
        return p.clone();
    }
    match std::env::var_os("PP_FLIGHT_DUMP") {
        Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => std::env::temp_dir().join(format!("pp-flight-{}.ndjson", std::process::id())),
    }
}

/// Install a panic hook that dumps the global recorder to
/// [`default_dump_path`] before delegating to the previous hook, so a
/// crashing process leaves its last `capacity` records behind. Idempotent
/// per process (second call is a no-op).
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path = default_dump_path();
            if recorder().dump_to(&path).is_ok() {
                eprintln!("pp-obs: flight recorder dumped to {}", path.display());
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(RecordKind::Event, 0, 3, "a", "", 10, 10, 7);
        rec.record(RecordKind::SpanOpen, 5, 0, "b", "cell-x", 11, 11, 0);
        rec.record(RecordKind::SpanClose, 5, 0, "b", "cell-x", 11, 42, 0);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[0].value, 7);
        assert_eq!(snap[0].parent, 3);
        assert_eq!(snap[1].kind, RecordKind::SpanOpen);
        assert_eq!(snap[2].end_micros, 42);
        assert_eq!(snap[2].label, "cell-x");
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn wraparound_keeps_newest_records_sorted() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..11u64 {
            rec.record(RecordKind::Event, 0, 0, "tick", "", i, i, i);
        }
        let snap = rec.snapshot();
        // Exactly the last `capacity` writes survive, in write order.
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(
            snap.iter().map(|r| r.value).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(rec.written(), 11);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::with_capacity(0);
        assert!(!rec.enabled());
        rec.record(RecordKind::Event, 0, 0, "x", "", 0, 0, 0);
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.to_ndjson(), "");
    }

    #[test]
    fn ndjson_lines_parse_back() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(
            RecordKind::SpanClose,
            9,
            2,
            "serve.request",
            "POST /cells",
            1,
            5,
            0,
        );
        let text = rec.to_ndjson();
        let v = Value::parse(text.trim()).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(9));
        assert_eq!(v.get("parent").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("end_micros").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("label").and_then(Value::as_str), Some("POST /cells"));
    }

    #[test]
    fn interner_reuses_indices() {
        let rec = FlightRecorder::with_capacity(4);
        for _ in 0..3 {
            rec.record(RecordKind::Event, 0, 0, "same", "lbl", 0, 0, 0);
        }
        assert_eq!(rec.interner.lock().unwrap().names.len(), 3); // "", "same", "lbl"
    }
}
