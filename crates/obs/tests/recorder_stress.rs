//! Flight-recorder integration tests: concurrent writers racing a
//! drain (also exercised under the CI TSan lane), wrap-around ordering
//! under contention, and the panic-hook dump producing parseable NDJSON
//! (checked in a child process so the panic doesn't fail the test).

use pp_obs::{FlightRecorder, RecordKind};
use pp_telemetry::json::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_writers_vs_drain_yields_consistent_snapshots() {
    let rec = Arc::new(FlightRecorder::with_capacity(64));
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4;
    let per_writer = 2_000u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..writers {
            let rec = Arc::clone(&rec);
            handles.push(scope.spawn(move || {
                for i in 0..per_writer {
                    // Payload encodes (writer, i) so a torn slot that
                    // slipped past the seqlock would be detectable.
                    rec.record(
                        RecordKind::Event,
                        0,
                        0,
                        "stress.tick",
                        "",
                        i,
                        i,
                        w * per_writer + i,
                    );
                }
            }));
        }
        let drainer = {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut drains = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = rec.snapshot();
                    // Every snapshot must be strictly ordered and
                    // internally consistent regardless of racing writers.
                    for pair in snap.windows(2) {
                        assert!(pair[0].seq < pair[1].seq, "unsorted snapshot");
                    }
                    for r in &snap {
                        assert_eq!(r.name, "stress.tick");
                        assert_eq!(r.start_micros, r.end_micros);
                        assert_eq!(r.start_micros, r.value % per_writer);
                    }
                    drains += 1;
                }
                drains
            })
        };
        // The drainer hammers snapshots until every writer is done.
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(drainer.join().unwrap() >= 1);
    });
    // Quiescent state: all writes counted, the ring holds the newest 64.
    assert_eq!(rec.written(), writers * per_writer);
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 64);
    let lo = writers * per_writer - 64;
    assert_eq!(
        snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
        (lo..writers * per_writer).collect::<Vec<_>>()
    );
}

#[test]
fn wraparound_under_contention_keeps_only_the_newest() {
    let rec = Arc::new(FlightRecorder::with_capacity(8));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let rec = Arc::clone(&rec);
            scope.spawn(move || {
                for i in 0..500u64 {
                    rec.record(RecordKind::Event, 0, 0, "wrap", "", i, i, i);
                }
            });
        }
    });
    let total = rec.written();
    assert_eq!(total, 2_000);
    let snap = rec.snapshot();
    assert_eq!(snap.len(), 8);
    for (offset, r) in snap.iter().enumerate() {
        assert_eq!(r.seq, total - 8 + offset as u64);
    }
}

/// Child-process half of `panic_hook_dumps_parseable_ndjson`: records a
/// span tree, installs the hook, panics.
#[test]
#[ignore = "helper: runs only as a child of panic_hook_dumps_parseable_ndjson"]
fn panic_hook_child() {
    if std::env::var("PP_FLIGHT_DUMP").is_err() {
        return; // invoked by a bare `--ignored` sweep, not by the parent
    }
    pp_obs::install_panic_hook();
    let outer = pp_obs::span_labelled("child.outer", "boom");
    let _inner = pp_obs::span("child.inner");
    pp_obs::event("child.event", 99);
    let _keep = outer;
    panic!("deliberate crash for the flight-recorder dump");
}

#[test]
fn panic_hook_dumps_parseable_ndjson() {
    let exe = std::env::current_exe().unwrap();
    let dump = std::env::temp_dir().join(format!("pp-obs-panic-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let out = std::process::Command::new(exe)
        .args(["--ignored", "--exact", "panic_hook_child"])
        .env("PP_FLIGHT_DUMP", &dump)
        .env("RUST_BACKTRACE", "0")
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "child was expected to die by panic: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = std::fs::read_to_string(&dump).expect("panic hook should have written the dump");
    let _ = std::fs::remove_file(&dump);
    let mut names = Vec::new();
    let mut opens = 0;
    for line in text.lines() {
        let v = Value::parse(line).expect("every dump line parses as JSON");
        let name = v.get("name").and_then(Value::as_str).unwrap().to_string();
        if v.get("kind").and_then(Value::as_str) == Some("span_open") {
            opens += 1;
        }
        names.push(name);
    }
    // The spans were still open when the process died, so the dump shows
    // the opens (that is the post-mortem value of the recorder) plus the
    // event, and the event is attached under the inner span.
    assert!(opens >= 2, "expected both span_open records:\n{text}");
    assert!(names.iter().any(|n| n == "child.outer"));
    assert!(names.iter().any(|n| n == "child.inner"));
    let event_line = text
        .lines()
        .map(|l| Value::parse(l).unwrap())
        .find(|v| v.get("name").and_then(Value::as_str) == Some("child.event"))
        .expect("child.event present");
    assert_eq!(event_line.get("value").and_then(Value::as_u64), Some(99));
    assert_ne!(event_line.get("parent").and_then(Value::as_u64), Some(0));
}
