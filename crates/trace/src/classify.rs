//! Protocol-semantic trace diagnostics for the k-partition protocol.
//!
//! The paper's convergence story is causal: free agents flip (rules 1–4)
//! until rule 5 can break symmetry and *birth* a builder chain, the chain
//! recruits (rule 6) and either *completes* into `g_{k-1}, g_k` (rule 7)
//! or *aborts* when two chains collide (rule 8), after which demolishers
//! walk the settled groups back down (rules 9–10). This module attributes
//! every effective record to its rule (via the labels compiled into the
//! protocol) and folds the record stream into those lifecycle events,
//! plus an online check of Lemma 1's invariant at every recorded step.

use crate::format::{TraceError, TraceHeader, TraceRecord};
use crate::replay::Trace;
use pp_engine::protocol::StateId;
use pp_protocols::kpartition::UniformKPartition;
use std::collections::BTreeMap;

/// One lifecycle event, derived from a rule firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Rule 5: `initial, initial' → g1, m2` — a builder chain is born
    /// (for `k = 2` the chain is trivial and completes immediately).
    ChainBirth {
        /// Interaction number of the firing.
        step: u64,
    },
    /// Rule 6: `x, m_i → g_i, m_{i+1}` — the chain recruits an agent into
    /// group `i` and advances to level `i + 1`.
    BuilderAdvance {
        /// Interaction number of the firing.
        step: u64,
        /// The level the builder advances *to* (`i + 1`).
        level: usize,
    },
    /// Rule 7: `x, m_{k-1} → g_{k-1}, g_k` — the chain completes and the
    /// builder settles into `g_k`.
    ChainCompletion {
        /// Interaction number of the firing.
        step: u64,
    },
    /// Rule 8: `m_i, m_j → d_{i-1}, d_{j-1}` — two chains collide and
    /// both abort into demolishers.
    ChainAbort {
        /// Interaction number of the firing.
        step: u64,
        /// Level of the first colliding builder.
        i: usize,
        /// Level of the second colliding builder.
        j: usize,
    },
    /// Rule 9: `d_i, g_i → d_{i-1}, initial` — the demolisher frees one
    /// settled agent and walks down a level.
    DemolitionStep {
        /// Interaction number of the firing.
        step: u64,
        /// The level being demolished.
        level: usize,
    },
    /// Rule 10: `d_1, g_1 → initial, initial` — the walk-back finishes
    /// and the demolisher itself returns to the free pool.
    DemolitionComplete {
        /// Interaction number of the firing.
        step: u64,
    },
}

impl Event {
    /// The interaction number the event occurred at.
    pub fn step(&self) -> u64 {
        match *self {
            Event::ChainBirth { step }
            | Event::BuilderAdvance { step, .. }
            | Event::ChainCompletion { step }
            | Event::ChainAbort { step, .. }
            | Event::DemolitionStep { step, .. }
            | Event::DemolitionComplete { step } => step,
        }
    }

    /// Short kind name for display and telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ChainBirth { .. } => "chain_birth",
            Event::BuilderAdvance { .. } => "builder_advance",
            Event::ChainCompletion { .. } => "chain_completion",
            Event::ChainAbort { .. } => "chain_abort",
            Event::DemolitionStep { .. } => "demolition_step",
            Event::DemolitionComplete { .. } => "demolition_complete",
        }
    }
}

/// The folded diagnostics of one trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// Firings per rule label (`r1`..`r10`), including zero entries for
    /// rules the protocol defines but the run never fired.
    pub rule_firings: BTreeMap<String, u64>,
    /// Lifecycle events in step order.
    pub events: Vec<Event>,
    /// Chain births (rule 5 firings).
    pub births: u64,
    /// Builder advances (rule 6 firings).
    pub advances: u64,
    /// Chain completions (rule 7 firings; for `k = 2`, rule 5 completes).
    pub completions: u64,
    /// Chain aborts (rule 8 firings) — each aborts *two* chains.
    pub aborts: u64,
    /// Demolition walk-back steps (rule 9 firings).
    pub demolition_steps: u64,
    /// Completed demolitions (rule 10 firings).
    pub demolitions: u64,
    /// Effective records that matched no labelled rule (0 for genuine
    /// k-partition traces; non-zero flags corruption or a foreign trace).
    pub unattributed: u64,
}

/// Recover the [`UniformKPartition`] instance a trace was recorded from,
/// by parsing `uniform-{k}-partition` and cross-checking the header's
/// state names against the protocol's layout.
pub fn kpartition_of(header: &TraceHeader) -> Result<UniformKPartition, TraceError> {
    let k: usize = header
        .protocol
        .strip_prefix("uniform-")
        .and_then(|rest| rest.strip_suffix("-partition"))
        .and_then(|mid| mid.parse().ok())
        .ok_or(TraceError::BadHeader {
            what: "not a uniform-k-partition trace",
        })?;
    if k < 2 || 3 * k - 2 != header.state_names.len() {
        return Err(TraceError::BadHeader {
            what: "state count does not match 3k - 2",
        });
    }
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    for s in proto.states() {
        if proto.state_name(s) != header.state_names[s.index()] {
            return Err(TraceError::BadHeader {
                what: "state names do not match the k-partition layout",
            });
        }
    }
    Ok(kp)
}

/// Attribute every effective record of `trace` to its rule and fold the
/// stream into lifecycle events. Fails if the trace is not a k-partition
/// trace (see [`kpartition_of`]).
pub fn classify(trace: &Trace) -> Result<Diagnostics, TraceError> {
    let kp = kpartition_of(&trace.header)?;
    let proto = kp.compile();
    let mut diag = Diagnostics::default();
    for label in proto.rule_names() {
        diag.rule_firings.insert(label.clone(), 0);
    }
    for rec in &trace.records {
        let &TraceRecord::Effective { step, p, q, p2, q2 } = rec else {
            continue;
        };
        let Some(rule) = proto.rule_of(StateId(p), StateId(q)) else {
            diag.unattributed += 1;
            continue;
        };
        // The recorded result must match what the rule does; a label with
        // a different outcome means the trace lies about the transition.
        let expect = proto.delta(StateId(p), StateId(q));
        if expect != (StateId(p2), StateId(q2)) {
            return Err(TraceError::DeltaMismatch { step });
        }
        let label = proto.rule_name(rule).to_string();
        *diag.rule_firings.entry(label.clone()).or_insert(0) += 1;
        match label.as_str() {
            "r5" => {
                diag.births += 1;
                diag.events.push(Event::ChainBirth { step });
                if kp.k() == 2 {
                    // k = 2: the same firing settles both agents.
                    diag.completions += 1;
                    diag.events.push(Event::ChainCompletion { step });
                }
            }
            "r6" => {
                // x, m_i → g_i, m_{i+1}: the m-state in the pair tells the
                // level; it appears as p or q depending on the order.
                let level = [p, q, p2, q2]
                    .iter()
                    .find_map(|&s| kp.m_index(StateId(s)))
                    .map(|i| i + 1)
                    .unwrap_or(0);
                diag.advances += 1;
                diag.events.push(Event::BuilderAdvance { step, level });
            }
            "r7" => {
                diag.completions += 1;
                diag.events.push(Event::ChainCompletion { step });
            }
            "r8" => {
                let i = kp.m_index(StateId(p)).unwrap_or(0);
                let j = kp.m_index(StateId(q)).unwrap_or(0);
                diag.aborts += 1;
                diag.events.push(Event::ChainAbort { step, i, j });
            }
            "r9" => {
                let level = kp
                    .d_index(StateId(p))
                    .or(kp.d_index(StateId(q)))
                    .unwrap_or(0);
                diag.demolition_steps += 1;
                diag.events.push(Event::DemolitionStep { step, level });
            }
            "r10" => {
                diag.demolitions += 1;
                diag.events.push(Event::DemolitionComplete { step });
            }
            // r1..r4: free-agent flips carry no lifecycle meaning.
            _ => {}
        }
    }
    Ok(diag)
}

/// Result of checking Lemma 1 at every recorded configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lemma1Report {
    /// The invariant held at the initial configuration and after every
    /// effective record; `checked` configurations were examined.
    Holds {
        /// Number of configurations checked (initial + one per record).
        checked: u64,
    },
    /// First violation: after the effective record at `step`, the
    /// residual vector was non-zero.
    ViolatedAt {
        /// Step of the first violating configuration.
        step: u64,
        /// The residual vector `Σ#m + Σ#d + #g_k − #g_x` per group `x`.
        residual: Vec<i64>,
    },
}

/// Walk the trace configurations and check the paper's Lemma 1 invariant
/// (`#g_x = Σ_{p>x} #m_p + Σ_{q≥x} #d_q + #g_k` for every `x`) online,
/// reporting the first violating step. Step 0 is the initial
/// configuration; identity runs cannot change counts and are skipped.
pub fn check_lemma1(trace: &Trace) -> Result<Lemma1Report, TraceError> {
    let kp = kpartition_of(&trace.header)?;
    let mut counts = trace.header.initial_counts.clone();
    if !kp.lemma1_holds(&counts) {
        return Ok(Lemma1Report::ViolatedAt {
            step: 0,
            residual: kp.lemma1_residual(&counts),
        });
    }
    let mut checked = 1u64;
    for rec in &trace.records {
        let &TraceRecord::Effective { step, p, q, p2, q2 } = rec else {
            continue;
        };
        for s in [p, q] {
            let c = &mut counts[s as usize];
            *c = c
                .checked_sub(1)
                .ok_or(TraceError::CountUnderflow { step, state: s })?;
        }
        counts[p2 as usize] += 1;
        counts[q2 as usize] += 1;
        checked += 1;
        if !kp.lemma1_holds(&counts) {
            return Ok(Lemma1Report::ViolatedAt {
                step,
                residual: kp.lemma1_residual(&counts),
            });
        }
    }
    Ok(Lemma1Report::Holds { checked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceKernel;
    use crate::recorder::TraceRecorder;
    use pp_engine::observer::Observer;
    use pp_engine::population::{CountPopulation, Population};
    use pp_engine::scheduler::UniformRandomScheduler;
    use pp_engine::simulator::Simulator;

    fn record_small_run(k: usize, n: u64, seed: u64) -> Trace {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let mut rec = TraceRecorder::for_run(&proto, &pop, seed, TraceKernel::Naive);
        Simulator::new(&proto)
            .run_observed(
                &mut pop,
                &mut sched,
                &kp.stable_signature(n),
                kp.interaction_budget(n),
                &mut rec,
            )
            .expect("small run stabilises");
        Trace::decode(&rec.finish(pop.counts())).unwrap()
    }

    #[test]
    fn classify_accounts_for_every_effective_record() {
        let trace = record_small_run(3, 10, 7);
        let diag = classify(&trace).unwrap();
        assert_eq!(diag.unattributed, 0);
        let total: u64 = diag.rule_firings.values().sum();
        assert_eq!(total, trace.effective_len());
        // A stabilised 3-partition of 10 agents groups ⌈10/3⌉+… agents:
        // there must be at least one birth and one completion.
        assert!(diag.births >= 1);
        assert!(diag.completions >= 1);
        // Conservation: every abort produces two demolishers, and each
        // demolisher must finish exactly one walk-back (rule 10) before
        // the run can stabilise.
        assert_eq!(diag.demolitions, 2 * diag.aborts);
    }

    #[test]
    fn lemma1_holds_on_real_runs() {
        for seed in [1, 2, 3] {
            let trace = record_small_run(4, 13, seed);
            match check_lemma1(&trace).unwrap() {
                Lemma1Report::Holds { checked } => {
                    assert_eq!(checked, trace.effective_len() + 1)
                }
                Lemma1Report::ViolatedAt { step, residual } => {
                    panic!("lemma 1 violated at step {step}: {residual:?}")
                }
            }
        }
    }

    #[test]
    fn lemma1_pinpoints_injected_violation() {
        let kp = UniformKPartition::new(3);
        let proto = kp.compile();
        let header = TraceHeader {
            protocol: "uniform-3-partition".into(),
            state_names: proto
                .states()
                .map(|s| proto.state_name(s).to_string())
                .collect(),
            n: 6,
            seed: 0,
            kernel: TraceKernel::Naive,
            initial_counts: {
                let mut c = vec![0u64; proto.num_states()];
                c[kp.initial().index()] = 6;
                c
            },
        };
        let ini = kp.initial();
        let inip = kp.initial_prime();
        // Start with one flipped agent so rule 5 can fire legally.
        let mut header = header;
        header.initial_counts[ini.index()] = 5;
        header.initial_counts[inip.index()] = 1;
        let mut rec = TraceRecorder::new(&header);
        // Legal: rule 5 births a chain at step 1 (invariant preserved).
        rec.on_interaction(1, ini, inip, kp.g(1), kp.m(2), &[]);
        // Injected violation: an agent teleports into g1 with no builder —
        // not a rule of the protocol, and it breaks #g1 accounting.
        rec.on_interaction(2, ini, ini, kp.g(1), ini, &[]);
        let mut fc = header.initial_counts.clone();
        fc[ini.index()] -= 2;
        fc[inip.index()] -= 1;
        fc[kp.g(1).index()] = 2;
        fc[kp.m(2).index()] = 1;
        let trace = Trace::decode(&rec.finish(&fc)).unwrap();
        match check_lemma1(&trace).unwrap() {
            Lemma1Report::ViolatedAt { step, .. } => assert_eq!(step, 2),
            Lemma1Report::Holds { .. } => panic!("violation not detected"),
        }
    }
}
