//! The `pp-trace` command-line interface.
//!
//! ```text
//! pp-trace record --k K --n N --seed S [--kernel naive|leap] [--budget B] --out FILE
//! pp-trace info FILE            header + size summary
//! pp-trace events FILE [--limit L]   lifecycle events + per-rule firings
//! pp-trace replay FILE [--at STEP]   deterministic replay (and config at a step)
//! pp-trace verify FILE          replay + live re-run bit-identity proof
//! pp-trace lemma1 FILE          online Lemma-1 invariant check
//! ```
//!
//! `record` honours the `PP_KERNEL` knob when `--kernel` is not given
//! (`auto` resolves to the leap kernel, like the analysis runner does
//! for count populations).

use crate::classify::{check_lemma1, classify, Event, Lemma1Report};
use crate::format::{TraceError, TraceKernel};
use crate::live::{record_kpartition, verify_against_live};
use crate::replay::Trace;
use std::path::Path;

/// Entry point; returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    match run(args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("pp-trace: {msg}");
            1
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "record" => cmd_record(rest),
        "info" => cmd_info(rest),
        "events" => cmd_events(rest),
        "replay" => cmd_replay(rest),
        "verify" => cmd_verify(rest),
        "lemma1" => cmd_lemma1(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `pp-trace help`)")),
    }
}

fn print_usage() {
    println!(
        "pp-trace: record, replay, and diagnose population-protocol executions

usage:
  pp-trace record --k K --n N --seed S [--kernel naive|leap] [--budget B] --out FILE
  pp-trace info FILE
  pp-trace events FILE [--limit L]
  pp-trace replay FILE [--at STEP]
  pp-trace verify FILE
  pp-trace lemma1 FILE"
    );
}

/// Parsed `--flag value` pairs, last occurrence winning (see [`opt`]).
type Opts = Vec<(String, String)>;

/// Parse `--flag value` pairs and positionals from `args`.
fn parse_opts(args: &[String]) -> Result<(Opts, Vec<String>), String> {
    let mut opts = Vec::new();
    let mut pos = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(flag) = a.strip_prefix("--") {
            let v = it
                .next()
                .ok_or_else(|| format!("--{flag} requires a value"))?;
            opts.push((flag.to_string(), v.clone()));
        } else {
            pos.push(a.clone());
        }
    }
    Ok((opts, pos))
}

fn opt<'a>(opts: &'a [(String, String)], name: &str) -> Option<&'a str> {
    opts.iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn parse_u64(opts: &[(String, String)], name: &str) -> Result<Option<u64>, String> {
    opt(opts, name)
        .map(|v| {
            v.parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`"))
        })
        .transpose()
}

fn kernel_from(opts: &[(String, String)]) -> Result<TraceKernel, String> {
    let chosen = opt(opts, "kernel")
        .map(str::to_string)
        .or_else(|| std::env::var("PP_KERNEL").ok());
    match chosen.as_deref().map(str::to_ascii_lowercase).as_deref() {
        Some("naive") => Ok(TraceKernel::Naive),
        Some("leap") | Some("auto") | None => Ok(TraceKernel::Leap),
        Some(other) => Err(format!("unknown kernel `{other}` (naive|leap)")),
    }
}

fn load(path: &str) -> Result<Trace, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn one_file(pos: &[String], cmd: &str) -> Result<String, String> {
    match pos {
        [f] => Ok(f.clone()),
        _ => Err(format!("`pp-trace {cmd}` takes exactly one trace file")),
    }
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    if !pos.is_empty() {
        return Err("`pp-trace record` takes only --flag options".into());
    }
    let k = parse_u64(&opts, "k")?.ok_or("--k is required")? as usize;
    let n = parse_u64(&opts, "n")?.ok_or("--n is required")?;
    let seed = parse_u64(&opts, "seed")?.unwrap_or(20_180_725);
    let budget = parse_u64(&opts, "budget")?;
    let kernel = kernel_from(&opts)?;
    let out_path = opt(&opts, "out").ok_or("--out is required")?;
    if k < 2 {
        return Err("--k must be at least 2".into());
    }
    let out = record_kpartition(k, n, seed, kernel, budget);
    write_atomic(Path::new(out_path), &out.bytes)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "recorded uniform-{k}-partition n={n} seed={seed} kernel={kernel}: \
         {} interactions ({} effective){} -> {out_path} ({} bytes)",
        out.interactions,
        out.effective,
        if out.censored { " [censored]" } else { "" },
        out.bytes.len()
    );
    Ok(())
}

/// Write via a temp file + rename so readers never see a torn trace.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension("trace.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    if !opts.is_empty() {
        return Err("`pp-trace info` takes no options".into());
    }
    let path = one_file(&pos, "info")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let h = &trace.header;
    println!("trace     {path} ({} bytes)", bytes.len());
    println!("protocol  {} ({} states)", h.protocol, h.state_names.len());
    println!("n         {}", h.n);
    println!("seed      {}", h.seed);
    println!("kernel    {}", h.kernel);
    println!(
        "records   {} effective + {} identity-run (covering {} identities)",
        trace.effective_len(),
        trace.records.len() as u64 - trace.effective_len(),
        trace.identity_total()
    );
    println!("last step {}", trace.last_step());
    let nonzero: Vec<String> = trace
        .final_counts
        .iter()
        .enumerate()
        .filter(|(_, c)| **c > 0)
        .map(|(i, c)| format!("{}:{c}", h.state_names[i]))
        .collect();
    println!("final     {}", nonzero.join(" "));
    Ok(())
}

fn cmd_events(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    let limit = parse_u64(&opts, "limit")?.unwrap_or(u64::MAX) as usize;
    let path = one_file(&pos, "events")?;
    let trace = load(&path)?;
    let diag = classify(&trace).map_err(|e| format!("{path}: {e}"))?;
    println!("rule firings:");
    for (rule, count) in &diag.rule_firings {
        println!("  {rule:<4} {count}");
    }
    if diag.unattributed > 0 {
        println!("  (unattributed: {})", diag.unattributed);
    }
    println!(
        "lifecycle: {} births, {} advances, {} completions, {} aborts, \
         {} demolition steps, {} demolitions finished",
        diag.births,
        diag.advances,
        diag.completions,
        diag.aborts,
        diag.demolition_steps,
        diag.demolitions
    );
    for ev in diag.events.iter().take(limit) {
        match *ev {
            Event::ChainBirth { step } => println!("{step:>10}  chain birth"),
            Event::BuilderAdvance { step, level } => {
                println!("{step:>10}  builder advance -> m{level}")
            }
            Event::ChainCompletion { step } => println!("{step:>10}  chain completion"),
            Event::ChainAbort { step, i, j } => {
                println!("{step:>10}  chain abort (m{i} vs m{j})")
            }
            Event::DemolitionStep { step, level } => {
                println!("{step:>10}  demolition step at d{level}")
            }
            Event::DemolitionComplete { step } => {
                println!("{step:>10}  demolition complete")
            }
        }
    }
    if diag.events.len() > limit {
        println!("... {} more events", diag.events.len() - limit);
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    let at = parse_u64(&opts, "at")?;
    let path = one_file(&pos, "replay")?;
    let trace = load(&path)?;
    let summary = trace.replay().map_err(|e| format!("{path}: {e}"))?;
    println!(
        "replayed {} interactions ({} effective, {} identity): final counts match footer",
        summary.interactions, summary.effective, summary.identity
    );
    if let Some(t) = at {
        let config = trace.config_at(t).map_err(|e| format!("{path}: {e}"))?;
        let pretty: Vec<String> = config
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| format!("{}:{c}", trace.header.state_names[i]))
            .collect();
        println!("config at step {t}: {}", pretty.join(" "));
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    if !opts.is_empty() {
        return Err("`pp-trace verify` takes no options".into());
    }
    let path = one_file(&pos, "verify")?;
    let trace = load(&path)?;
    let report = verify_against_live(&trace).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "verified: replay of {} effective interactions is bit-identical to the live \
         {} run ({} interactions{})",
        report.replay.effective,
        trace.header.kernel,
        report.live_interactions,
        if report.censored { ", censored" } else { "" }
    );
    Ok(())
}

fn cmd_lemma1(args: &[String]) -> Result<(), String> {
    let (opts, pos) = parse_opts(args)?;
    if !opts.is_empty() {
        return Err("`pp-trace lemma1` takes no options".into());
    }
    let path = one_file(&pos, "lemma1")?;
    let trace = load(&path)?;
    match check_lemma1(&trace).map_err(|e| format!("{path}: {e}"))? {
        Lemma1Report::Holds { checked } => {
            println!("lemma 1 holds at all {checked} recorded configurations");
            Ok(())
        }
        Lemma1Report::ViolatedAt { step, residual } => Err(format!(
            "lemma 1 violated at step {step}: residual {residual:?}"
        )),
    }
}

/// Convert an I/O-free [`TraceError`] into the CLI's error string.
pub fn describe(err: &TraceError) -> String {
    err.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_opts_splits_flags_and_positionals() {
        let args: Vec<String> = ["--k", "4", "file.trace", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (opts, pos) = parse_opts(&args).unwrap();
        assert_eq!(opt(&opts, "k"), Some("4"));
        assert_eq!(opt(&opts, "seed"), Some("7"));
        assert_eq!(pos, vec!["file.trace"]);
        assert!(parse_opts(&["--k".to_string()]).is_err());
    }

    #[test]
    fn record_verify_lemma1_end_to_end() {
        let dir = std::env::temp_dir().join("pp-trace-cli-test");
        let path = dir.join("cell.trace");
        let _ = std::fs::remove_file(&path);
        let args: Vec<String> = [
            "record", "--k", "3", "--n", "8", "--seed", "11", "--kernel", "naive", "--out",
        ]
        .iter()
        .map(|s| s.to_string())
        .chain([path.to_string_lossy().into_owned()])
        .collect();
        assert_eq!(main_with_args(&args), 0);
        for cmd in ["info", "events", "replay", "verify", "lemma1"] {
            let args = vec![cmd.to_string(), path.to_string_lossy().into_owned()];
            assert_eq!(main_with_args(&args), 0, "pp-trace {cmd} failed");
        }
        let _ = std::fs::remove_file(&path);
    }
}
