//! Recording live runs through the engine's `Observer` hook.
//!
//! [`TraceRecorder`] implements [`pp_engine::observer::Observer`], so it
//! plugs into `Simulator::run_observed` and `run_leap_observed` (alone or
//! chained) without any change to the hot loops. Under the naive kernel
//! it coalesces per-step identity interactions into the same compact
//! identity-run records the leap kernel reports natively, so traces of
//! the two kernels share one format and one decoder.

use crate::format::{
    encode_header, fnv1a64, put_varint, TraceHeader, TraceKernel, TAG_EFFECTIVE, TAG_FOOTER,
    TAG_IDENTITY_RUN, TAG_LIFECYCLE,
};
use pp_engine::observer::{LifecycleKind, Observer};
use pp_engine::population::{CountPopulation, Population};
use pp_engine::protocol::{CompiledProtocol, StateId};

/// An [`Observer`] that encodes the execution into the trace format.
///
/// Create with [`TraceRecorder::new`] (or [`TraceRecorder::for_run`] to
/// derive the header from a protocol + population), attach to a run, then
/// call [`TraceRecorder::finish`] with the final configuration to obtain
/// the complete byte stream.
///
/// A recorder built with [`TraceRecorder::disabled`] keeps the same type
/// (so call sites can toggle recording without re-monomorphising the
/// simulation) but skips all encoding; its overhead is one branch per
/// observer callback, guarded by the `trace_overhead` bench group.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    buf: Vec<u8>,
    /// Last interaction number covered by an emitted record.
    emitted_step: u64,
    /// Identity interactions seen (naive kernel) but not yet emitted.
    pending_identities: u64,
    effective: u64,
    identity: u64,
    lifecycle: u64,
    enabled: bool,
}

impl TraceRecorder {
    /// Start a trace with the given header.
    pub fn new(header: &TraceHeader) -> Self {
        TraceRecorder {
            buf: encode_header(header),
            emitted_step: 0,
            pending_identities: 0,
            effective: 0,
            identity: 0,
            lifecycle: 0,
            enabled: true,
        }
    }

    /// Build the header from a compiled protocol and the population's
    /// *current* (pre-run) configuration.
    pub fn for_run(
        proto: &CompiledProtocol,
        pop: &CountPopulation,
        seed: u64,
        kernel: TraceKernel,
    ) -> Self {
        let header = TraceHeader {
            protocol: proto.name().to_string(),
            state_names: proto
                .states()
                .map(|s| proto.state_name(s).to_string())
                .collect(),
            n: pop.num_agents(),
            seed,
            kernel,
            initial_counts: pop.counts().to_vec(),
        };
        TraceRecorder::new(&header)
    }

    /// A recorder that ignores every event and produces no bytes.
    pub fn disabled() -> Self {
        TraceRecorder {
            buf: Vec::new(),
            emitted_step: 0,
            pending_identities: 0,
            effective: 0,
            identity: 0,
            lifecycle: 0,
            enabled: false,
        }
    }

    /// Whether this recorder is actually encoding.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Effective interactions recorded so far.
    pub fn effective_recorded(&self) -> u64 {
        self.effective
    }

    /// Identity interactions covered so far (coalesced or leap-reported).
    pub fn identity_recorded(&self) -> u64 {
        self.identity
    }

    /// Lifecycle events (joins/leaves/crashes) recorded so far.
    pub fn lifecycle_recorded(&self) -> u64 {
        self.lifecycle
    }

    /// Bytes encoded so far (header + records; no footer yet).
    pub fn bytes_so_far(&self) -> usize {
        self.buf.len()
    }

    fn flush_identities(&mut self) {
        if self.pending_identities > 0 {
            let last = self.emitted_step + self.pending_identities;
            put_varint(&mut self.buf, TAG_IDENTITY_RUN);
            put_varint(&mut self.buf, last - self.emitted_step);
            put_varint(&mut self.buf, self.pending_identities);
            self.emitted_step = last;
            self.pending_identities = 0;
        }
    }

    /// Seal the trace: flush any coalesced identities, append the footer
    /// with `final_counts` and the checksum, and return the byte stream.
    pub fn finish(mut self, final_counts: &[u64]) -> Vec<u8> {
        assert!(self.enabled, "cannot finish a disabled recorder");
        self.flush_identities();
        put_varint(&mut self.buf, TAG_FOOTER);
        for &c in final_counts {
            put_varint(&mut self.buf, c);
        }
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

impl Observer for TraceRecorder {
    #[inline]
    fn on_interaction(
        &mut self,
        step: u64,
        p: StateId,
        q: StateId,
        p2: StateId,
        q2: StateId,
        _counts: &[u64],
    ) {
        if !self.enabled {
            return;
        }
        if p == p2 && q == q2 {
            // Naive kernel reporting an identity: coalesce.
            self.pending_identities += 1;
            self.identity += 1;
            return;
        }
        self.flush_identities();
        put_varint(&mut self.buf, TAG_EFFECTIVE);
        put_varint(&mut self.buf, step - self.emitted_step);
        put_varint(&mut self.buf, p.0 as u64);
        put_varint(&mut self.buf, q.0 as u64);
        put_varint(&mut self.buf, p2.0 as u64);
        put_varint(&mut self.buf, q2.0 as u64);
        self.emitted_step = step;
        self.effective += 1;
    }

    #[inline]
    fn on_identity_run(&mut self, last_step: u64, skipped: u64, _counts: &[u64]) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(self.pending_identities, 0, "mixed kernel reporting");
        put_varint(&mut self.buf, TAG_IDENTITY_RUN);
        put_varint(&mut self.buf, last_step - self.emitted_step);
        put_varint(&mut self.buf, skipped);
        self.emitted_step = last_step;
        self.identity += skipped;
    }

    #[inline]
    fn on_lifecycle(&mut self, step: u64, kind: LifecycleKind, state: StateId, _counts: &[u64]) {
        if !self.enabled {
            return;
        }
        // A lifecycle event may share its step with the interaction that
        // preceded it, so a zero delta is legal here (unlike effective
        // records). Pending identities must flush first to keep records
        // in event order.
        self.flush_identities();
        put_varint(&mut self.buf, TAG_LIFECYCLE);
        put_varint(&mut self.buf, step - self.emitted_step);
        put_varint(&mut self.buf, kind.code());
        put_varint(&mut self.buf, state.0 as u64);
        self.emitted_step = step;
        self.lifecycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Trace;

    fn header2() -> TraceHeader {
        TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into(), "b".into()],
            n: 4,
            seed: 1,
            kernel: TraceKernel::Naive,
            initial_counts: vec![4, 0],
        }
    }

    #[test]
    fn naive_identities_coalesce_into_runs() {
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header2());
        rec.on_interaction(1, a, a, a, a, &[4, 0]); // identity
        rec.on_interaction(2, a, a, a, a, &[4, 0]); // identity
        rec.on_interaction(3, a, a, b, b, &[2, 2]); // effective
        rec.on_interaction(4, a, b, a, b, &[2, 2]); // identity
        rec.on_interaction(5, a, a, b, b, &[0, 4]); // effective
        assert_eq!(rec.effective_recorded(), 2);
        assert_eq!(rec.identity_recorded(), 3);
        let bytes = rec.finish(&[0, 4]);
        let trace = Trace::decode(&bytes).unwrap();
        use crate::format::TraceRecord::*;
        assert_eq!(
            trace.records,
            vec![
                IdentityRun {
                    last_step: 2,
                    skipped: 2
                },
                Effective {
                    step: 3,
                    p: 0,
                    q: 0,
                    p2: 1,
                    q2: 1
                },
                IdentityRun {
                    last_step: 4,
                    skipped: 1
                },
                Effective {
                    step: 5,
                    p: 0,
                    q: 0,
                    p2: 1,
                    q2: 1
                },
            ]
        );
    }

    #[test]
    fn leap_identity_runs_encode_directly() {
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header2());
        rec.on_identity_run(7, 7, &[4, 0]);
        rec.on_interaction(8, a, a, b, b, &[2, 2]);
        let bytes = rec.finish(&[2, 2]);
        let trace = Trace::decode(&bytes).unwrap();
        assert_eq!(trace.records.len(), 2);
        assert_eq!(trace.last_step(), 8);
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let a = StateId(0);
        let mut rec = TraceRecorder::disabled();
        rec.on_interaction(1, a, a, a, a, &[4, 0]);
        rec.on_identity_run(9, 8, &[4, 0]);
        rec.on_lifecycle(2, LifecycleKind::Join, a, &[5, 0]);
        assert_eq!(rec.bytes_so_far(), 0);
        assert!(!rec.is_enabled());
    }

    #[test]
    fn lifecycle_records_round_trip_with_net_churn() {
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header2());
        rec.on_interaction(1, a, a, b, b, &[2, 2]);
        // Same step as the interaction: zero delta on the wire.
        rec.on_lifecycle(1, LifecycleKind::Join, a, &[3, 2]);
        rec.on_interaction(2, a, a, a, a, &[3, 2]); // identity, coalesced
                                                    // Lifecycle must flush the pending identity run first.
        rec.on_lifecycle(2, LifecycleKind::Crash, b, &[3, 1]);
        rec.on_lifecycle(2, LifecycleKind::Leave, a, &[2, 1]);
        assert_eq!(rec.lifecycle_recorded(), 3);
        let bytes = rec.finish(&[2, 1]);
        let trace = Trace::decode(&bytes).unwrap();
        use crate::format::TraceRecord::*;
        assert_eq!(
            trace.records,
            vec![
                Effective {
                    step: 1,
                    p: 0,
                    q: 0,
                    p2: 1,
                    q2: 1
                },
                Lifecycle {
                    step: 1,
                    kind: LifecycleKind::Join,
                    state: 0
                },
                IdentityRun {
                    last_step: 2,
                    skipped: 1
                },
                Lifecycle {
                    step: 2,
                    kind: LifecycleKind::Crash,
                    state: 1
                },
                Lifecycle {
                    step: 2,
                    kind: LifecycleKind::Leave,
                    state: 0
                },
            ]
        );
        // Footer sums to initial n (4) plus net churn (+1 − 2 = −1).
        assert_eq!(trace.final_counts.iter().sum::<u64>(), 3);
        let summary = trace.replay().unwrap();
        assert_eq!(summary.lifecycle, 3);
        assert_eq!(summary.final_counts, vec![2, 1]);
    }
}
