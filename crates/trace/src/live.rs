//! Recording live k-partition runs and verifying traces against re-runs.
//!
//! [`record_kpartition`] runs the paper's protocol to stability (or the
//! interaction budget) with a [`TraceRecorder`] attached and returns the
//! sealed trace bytes. [`verify_against_live`] closes the loop: it
//! re-runs the simulation the header describes (same protocol, n, seed,
//! kernel) and demands the trace replay be *bit-identical* to the live
//! run — same final counts, same interaction count. Determinism holds
//! because observers never touch the scheduler's RNG.

use crate::format::{TraceError, TraceKernel};
use crate::recorder::TraceRecorder;
use crate::replay::{ReplaySummary, Trace};
use pp_engine::population::{CountPopulation, Population};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::{RunError, Simulator};
use pp_protocols::kpartition::UniformKPartition;

/// Outcome of recording one live run.
#[derive(Clone, Debug)]
pub struct RecordOutcome {
    /// The complete sealed trace stream.
    pub bytes: Vec<u8>,
    /// Interactions performed by the live run (budget if censored).
    pub interactions: u64,
    /// Effective interactions performed.
    pub effective: u64,
    /// Whether the run hit its interaction budget before stabilising.
    pub censored: bool,
    /// The live run's final configuration.
    pub final_counts: Vec<u64>,
}

/// Record a live uniform-k-partition run (all agents starting in
/// `initial`) under the given kernel. `budget` defaults to the
/// protocol's [`UniformKPartition::interaction_budget`].
pub fn record_kpartition(
    k: usize,
    n: u64,
    seed: u64,
    kernel: TraceKernel,
    budget: Option<u64>,
) -> RecordOutcome {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let criterion = kp.stable_signature(n);
    let budget = budget.unwrap_or_else(|| kp.interaction_budget(n));
    let mut rec = TraceRecorder::for_run(&proto, &pop, seed, kernel);
    let sim = Simulator::new(&proto);
    let outcome = match kernel {
        TraceKernel::Naive => sim.run_observed(&mut pop, &mut sched, &criterion, budget, &mut rec),
        TraceKernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, &criterion, budget, &mut rec)
        }
    };
    let (interactions, censored) = match outcome {
        Ok(res) => (res.interactions, false),
        Err(RunError::InteractionLimit { limit }) => (limit, true),
        Err(RunError::PopulationTooSmall) => (0, false),
    };
    let effective = rec.effective_recorded();
    RecordOutcome {
        bytes: rec.finish(pop.counts()),
        interactions,
        effective,
        censored,
        final_counts: pop.counts().to_vec(),
    }
}

/// A successful live verification.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// The replay summary (δ-checked against the compiled protocol).
    pub replay: ReplaySummary,
    /// Interactions of the live re-run.
    pub live_interactions: u64,
    /// Whether the live re-run hit the budget (censored trace).
    pub censored: bool,
}

/// Re-run the simulation described by the trace header and verify the
/// trace replays to the *bit-identical* outcome: replayed final counts
/// equal both the footer's and the live run's, and (for uncensored runs)
/// the live interaction count equals the trace's last recorded step.
///
/// Only k-partition traces can be re-run (the header names the protocol;
/// rebuilding arbitrary protocols from a name is not possible).
pub fn verify_against_live(trace: &Trace) -> Result<VerifyReport, TraceError> {
    let kp = crate::classify::kpartition_of(&trace.header)?;
    let proto = kp.compile();
    // Replay first: structural validity + δ conformance + footer match.
    let replay = trace.replay_checked(&proto)?;

    let n = trace.header.n;
    // Traces may start from non-default configurations; reproduce exactly
    // the header's initial counts.
    let mut pop = CountPopulation::from_counts(trace.header.initial_counts.clone());
    let mut sched = UniformRandomScheduler::from_seed(trace.header.seed);
    let criterion = kp.stable_signature(n);
    let budget = kp.interaction_budget(n);
    let sim = Simulator::new(&proto);
    let outcome = match trace.header.kernel {
        TraceKernel::Naive => sim.run_observed(
            &mut pop,
            &mut sched,
            &criterion,
            budget,
            &mut pp_engine::observer::NullObserver,
        ),
        TraceKernel::Leap => sim.run_leap_observed(
            &mut pop,
            &mut sched,
            &criterion,
            budget,
            &mut pp_engine::observer::NullObserver,
        ),
    };
    let (live_interactions, censored) = match outcome {
        Ok(res) => (res.interactions, false),
        Err(RunError::InteractionLimit { limit }) => (limit, true),
        Err(RunError::PopulationTooSmall) => {
            return Err(TraceError::BadHeader {
                what: "population too small to re-run",
            })
        }
    };
    if pop.counts() != trace.final_counts.as_slice() {
        return Err(TraceError::LiveDiverged {
            what: "final counts",
        });
    }
    if !censored && live_interactions != trace.last_step() {
        return Err(TraceError::LiveDiverged {
            what: "interaction count",
        });
    }
    Ok(VerifyReport {
        replay,
        live_interactions,
        censored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_verify_both_kernels() {
        for kernel in [TraceKernel::Naive, TraceKernel::Leap] {
            let out = record_kpartition(3, 9, 12345, kernel, None);
            assert!(!out.censored);
            let trace = Trace::decode(&out.bytes).unwrap();
            assert_eq!(trace.header.kernel, kernel);
            assert_eq!(trace.last_step(), out.interactions, "{kernel}");
            assert_eq!(trace.final_counts, out.final_counts);
            let report = verify_against_live(&trace).unwrap();
            assert_eq!(report.live_interactions, out.interactions);
            assert_eq!(report.replay.effective, out.effective);
        }
    }

    #[test]
    fn tampered_record_fails_verification() {
        let out = record_kpartition(3, 9, 99, TraceKernel::Naive, None);
        let mut trace = Trace::decode(&out.bytes).unwrap();
        // Tamper with a decoded record: swap the results of the first
        // effective interaction with distinct result states (swapping a
        // symmetric result like rule 1's would change nothing).
        use crate::format::TraceRecord;
        for rec in &mut trace.records {
            if let TraceRecord::Effective { p2, q2, .. } = rec {
                if p2 != q2 {
                    std::mem::swap(p2, q2);
                    break;
                }
            }
        }
        assert!(
            verify_against_live(&trace).is_err(),
            "tampered trace verified"
        );
    }
}
