//! Exporting trace diagnostics through the pp-telemetry registry.
//!
//! Series, all integer counters (rule firings are labelled by rule id):
//!
//! | name                        | labels      | meaning |
//! |-----------------------------|-------------|---------|
//! | `trace.records.effective`   |             | effective records exported |
//! | `trace.records.identity`    |             | identity interactions covered |
//! | `trace.bytes`               |             | trace bytes exported |
//! | `trace.rule.firings`        | `rule=rX`   | firings per Algorithm 1 rule |
//! | `trace.chain.births`        |             | chain births (rule 5) |
//! | `trace.chain.completions`   |             | chain completions (rule 7) |
//! | `trace.chain.aborts`        |             | chain collisions (rule 8) |
//! | `trace.chain.demolitions`   |             | finished walk-backs (rule 10) |

use crate::classify::Diagnostics;
use crate::replay::Trace;
use pp_telemetry::Registry;

/// Names of the chain-lifecycle counters, in export order.
pub const CHAIN_COUNTERS: &[&str] = &[
    "trace.chain.births",
    "trace.chain.completions",
    "trace.chain.aborts",
    "trace.chain.demolitions",
];

/// Force-register the global trace series at zero so exports are
/// complete (and validatable) even when nothing was traced.
pub fn register_series(reg: &Registry) {
    reg.counter("trace.records.effective");
    reg.counter("trace.records.identity");
    reg.counter("trace.bytes");
    for name in CHAIN_COUNTERS {
        reg.counter(name);
    }
}

/// Export one trace's record/byte totals into `reg`.
pub fn export_trace_stats(reg: &Registry, trace: &Trace, bytes: usize) {
    reg.counter("trace.records.effective")
        .add(trace.effective_len());
    reg.counter("trace.records.identity")
        .add(trace.identity_total());
    reg.counter("trace.bytes").add(bytes as u64);
}

/// Export per-rule firing counts and chain-lifecycle totals into `reg`.
pub fn export_diagnostics(reg: &Registry, diag: &Diagnostics) {
    for (rule, &count) in &diag.rule_firings {
        reg.counter_with("trace.rule.firings", &[("rule", rule.as_str())])
            .add(count);
    }
    reg.counter("trace.chain.births").add(diag.births);
    reg.counter("trace.chain.completions").add(diag.completions);
    reg.counter("trace.chain.aborts").add(diag.aborts);
    reg.counter("trace.chain.demolitions").add(diag.demolitions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceKernel;
    use crate::live::record_kpartition;

    #[test]
    fn diagnostics_land_in_registry() {
        let reg = Registry::new();
        register_series(&reg);
        let out = record_kpartition(3, 8, 5, TraceKernel::Leap, None);
        let trace = Trace::decode(&out.bytes).unwrap();
        let diag = crate::classify::classify(&trace).unwrap();
        export_trace_stats(&reg, &trace, out.bytes.len());
        export_diagnostics(&reg, &diag);
        let snap = pp_telemetry::Snapshot::capture(&reg);
        assert_eq!(
            snap.value("trace.records.effective"),
            Some(trace.effective_len())
        );
        assert_eq!(snap.value("trace.chain.births"), Some(diag.births));
        // Labelled rule series exist for every labelled rule.
        let rule_series = snap
            .metrics
            .iter()
            .filter(|m| m.name == "trace.rule.firings")
            .count();
        assert_eq!(rule_series, diag.rule_firings.len());
    }
}
