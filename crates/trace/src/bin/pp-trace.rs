//! `pp-trace` binary: thin wrapper over [`pp_trace::cli::main_with_args`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(pp_trace::cli::main_with_args(&args));
}
