//! Decoding and deterministic replay.
//!
//! [`Trace::decode`] parses and validates a byte stream (magic, header,
//! records, footer, checksum, no trailing bytes). [`Trace::replay`]
//! re-applies the records to the header's initial configuration and
//! verifies the result is bit-identical to the footer's final counts —
//! which, for a trace recorded from a live run, are the live run's final
//! counts, making replay an end-to-end correctness oracle for both
//! kernels. [`Trace::index`] adds random access to "configuration at
//! step t" via evenly spaced checkpoints.

use crate::format::{
    decode_header, fnv1a64, Reader, TraceError, TraceHeader, TraceRecord, TAG_EFFECTIVE,
    TAG_FOOTER, TAG_IDENTITY_RUN, TAG_LIFECYCLE,
};
use pp_engine::observer::LifecycleKind;
use pp_engine::protocol::{CompiledProtocol, StateId};

/// A fully decoded trace: header, records (absolute steps), final counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The run's identity: protocol, population, seed, kernel.
    pub header: TraceHeader,
    /// Records in step order, with absolute interaction numbers.
    pub records: Vec<TraceRecord>,
    /// Final configuration stored in the footer.
    pub final_counts: Vec<u64>,
}

/// Aggregate numbers produced by a successful replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Total interactions covered (effective + identity).
    pub interactions: u64,
    /// Effective interactions replayed.
    pub effective: u64,
    /// Identity interactions covered by identity-run records.
    pub identity: u64,
    /// Lifecycle events replayed (joins + leaves + crashes).
    pub lifecycle: u64,
    /// The replayed final configuration (equals the footer's).
    pub final_counts: Vec<u64>,
}

impl Trace {
    /// Decode and validate a complete trace stream.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader::new(bytes);
        let header = decode_header(&mut r)?;
        let s = header.state_names.len();
        let mut records = Vec::new();
        let mut step = 0u64;
        // Net population change from lifecycle records; the footer's
        // counts must sum to the initial n plus this.
        let mut net: i64 = 0;
        loop {
            let tag = r.varint()?;
            match tag {
                TAG_EFFECTIVE => {
                    let dstep = r.varint()?;
                    if dstep == 0 {
                        return Err(TraceError::Malformed {
                            what: "zero step delta",
                        });
                    }
                    step = step.checked_add(dstep).ok_or(TraceError::Malformed {
                        what: "step overflow",
                    })?;
                    let mut ids = [0u16; 4];
                    for slot in &mut ids {
                        let v = r.varint()?;
                        if v > u16::MAX as u64 {
                            return Err(TraceError::Malformed {
                                what: "state id overflows u16",
                            });
                        }
                        *slot = v as u16;
                    }
                    let [p, q, p2, q2] = ids;
                    for id in ids {
                        if id as usize >= s {
                            return Err(TraceError::StateOutOfRange { step, state: id });
                        }
                    }
                    if p == p2 && q == q2 {
                        return Err(TraceError::Malformed {
                            what: "identity encoded as effective record",
                        });
                    }
                    records.push(TraceRecord::Effective { step, p, q, p2, q2 });
                }
                TAG_IDENTITY_RUN => {
                    let dlast = r.varint()?;
                    let skipped = r.varint()?;
                    if dlast == 0 || skipped == 0 || skipped > dlast {
                        return Err(TraceError::Malformed {
                            what: "inconsistent identity run",
                        });
                    }
                    step = step.checked_add(dlast).ok_or(TraceError::Malformed {
                        what: "step overflow",
                    })?;
                    records.push(TraceRecord::IdentityRun {
                        last_step: step,
                        skipped,
                    });
                }
                TAG_LIFECYCLE => {
                    // Lifecycle events sit between interactions: a zero
                    // step delta is legal (the event follows the
                    // interaction the previous record ended on).
                    let dstep = r.varint()?;
                    step = step.checked_add(dstep).ok_or(TraceError::Malformed {
                        what: "step overflow",
                    })?;
                    let kind =
                        LifecycleKind::from_code(r.varint()?).ok_or(TraceError::Malformed {
                            what: "unknown lifecycle kind",
                        })?;
                    let state = r.varint()?;
                    if state > u16::MAX as u64 {
                        return Err(TraceError::Malformed {
                            what: "state id overflows u16",
                        });
                    }
                    let state = state as u16;
                    if state as usize >= s {
                        return Err(TraceError::StateOutOfRange { step, state });
                    }
                    let rec = TraceRecord::Lifecycle { step, kind, state };
                    net += rec.population_delta();
                    if (header.n as i64) + net < 0 {
                        return Err(TraceError::Malformed {
                            what: "lifecycle records drop population below zero",
                        });
                    }
                    records.push(rec);
                }
                TAG_FOOTER => {
                    let mut final_counts = Vec::with_capacity(s);
                    for _ in 0..s {
                        final_counts.push(r.varint()?);
                    }
                    let body_len = r.pos();
                    let stored =
                        u64::from_le_bytes(r.take(8)?.try_into().expect("take(8) returns 8 bytes"));
                    if r.remaining() > 0 {
                        return Err(TraceError::TrailingBytes {
                            extra: r.remaining(),
                        });
                    }
                    let computed = fnv1a64(&bytes[..body_len]);
                    if stored != computed {
                        return Err(TraceError::ChecksumMismatch { stored, computed });
                    }
                    // The header's n is the *initial* population;
                    // lifecycle records shift the final total.
                    let expected = (header.n as i64) + net;
                    if final_counts.iter().sum::<u64>() != expected as u64 {
                        return Err(TraceError::BadHeader {
                            what: "final counts do not sum to n plus net churn",
                        });
                    }
                    return Ok(Trace {
                        header,
                        records,
                        final_counts,
                    });
                }
                tag => return Err(TraceError::UnknownTag { tag }),
            }
        }
    }

    /// The last interaction number any record covers (0 for empty traces).
    pub fn last_step(&self) -> u64 {
        self.records.last().map_or(0, TraceRecord::last_step)
    }

    /// Number of effective-interaction records.
    pub fn effective_len(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Effective { .. }))
            .count() as u64
    }

    /// Total identity interactions covered by identity-run records.
    pub fn identity_total(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::IdentityRun { skipped, .. } => *skipped,
                _ => 0,
            })
            .sum()
    }

    /// Replay the records against the initial configuration.
    ///
    /// Verifies counts never go negative and that the replayed final
    /// configuration is *bit-identical* to the footer's. Does not need
    /// the protocol; see [`Trace::replay_checked`] for δ-conformance.
    pub fn replay(&self) -> Result<ReplaySummary, TraceError> {
        self.replay_inner(None)
    }

    /// Like [`Trace::replay`], but additionally verifies every effective
    /// record agrees with `proto`'s transition function and that every
    /// recorded pair in an identity run *could* be an identity (the pair
    /// itself is not recorded, so only effective records are checked
    /// exactly).
    pub fn replay_checked(&self, proto: &CompiledProtocol) -> Result<ReplaySummary, TraceError> {
        if proto.num_states() != self.header.state_names.len() {
            return Err(TraceError::BadHeader {
                what: "protocol state count differs from header",
            });
        }
        self.replay_inner(Some(proto))
    }

    fn replay_inner(&self, proto: Option<&CompiledProtocol>) -> Result<ReplaySummary, TraceError> {
        let mut counts = self.header.initial_counts.clone();
        let mut effective = 0u64;
        let mut identity = 0u64;
        let mut lifecycle = 0u64;
        for rec in &self.records {
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    if let Some(proto) = proto {
                        let (e2, f2) = proto.delta(StateId(p), StateId(q));
                        if (e2, f2) != (StateId(p2), StateId(q2)) {
                            return Err(TraceError::DeltaMismatch { step });
                        }
                    }
                    apply(&mut counts, step, p, q, p2, q2)?;
                    effective += 1;
                }
                TraceRecord::IdentityRun { skipped, .. } => identity += skipped,
                TraceRecord::Lifecycle { step, kind, state } => {
                    apply_lifecycle(&mut counts, step, kind, state)?;
                    lifecycle += 1;
                }
            }
        }
        if counts != self.final_counts {
            return Err(TraceError::FinalCountsMismatch);
        }
        Ok(ReplaySummary {
            interactions: self.last_step(),
            effective,
            identity,
            lifecycle,
            final_counts: counts,
        })
    }

    /// The configuration after interaction `t` (`t = 0` is the initial
    /// configuration). Linear in the number of records before `t`; for
    /// repeated queries build a [`TraceIndex`].
    pub fn config_at(&self, t: u64) -> Result<Vec<u64>, TraceError> {
        let mut counts = self.header.initial_counts.clone();
        for rec in &self.records {
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    if step > t {
                        break;
                    }
                    apply(&mut counts, step, p, q, p2, q2)?;
                }
                // Identity runs never change counts; skip them.
                TraceRecord::IdentityRun { .. } => {}
                TraceRecord::Lifecycle { step, kind, state } => {
                    if step > t {
                        break;
                    }
                    apply_lifecycle(&mut counts, step, kind, state)?;
                }
            }
        }
        Ok(counts)
    }

    /// Build a checkpoint index with one snapshot every `stride`
    /// count-changing records (`stride ≥ 1`), enabling O(stride) random
    /// access.
    pub fn index(&self, stride: usize) -> TraceIndex {
        assert!(stride >= 1, "index stride must be at least 1");
        let mut checkpoints = vec![Checkpoint {
            applied: 0,
            step: 0,
            counts: self.header.initial_counts.clone(),
        }];
        let mut counts = self.header.initial_counts.clone();
        let mut since = 0usize;
        for (i, rec) in self.records.iter().enumerate() {
            // Records decoded by `Trace::decode` cannot underflow n, but
            // tolerate hand-built traces by ignoring failures here; the
            // authoritative check lives in `replay`.
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    let _ = apply(&mut counts, step, p, q, p2, q2);
                }
                TraceRecord::IdentityRun { .. } => continue,
                TraceRecord::Lifecycle { step, kind, state } => {
                    let _ = apply_lifecycle(&mut counts, step, kind, state);
                }
            }
            since += 1;
            if since == stride {
                checkpoints.push(Checkpoint {
                    applied: i + 1,
                    step: rec.last_step(),
                    counts: counts.clone(),
                });
                since = 0;
            }
        }
        TraceIndex {
            stride,
            checkpoints,
        }
    }
}

/// Apply one effective transition to a count vector.
fn apply(
    counts: &mut [u64],
    step: u64,
    p: u16,
    q: u16,
    p2: u16,
    q2: u16,
) -> Result<(), TraceError> {
    for s in [p, q] {
        let c = &mut counts[s as usize];
        *c = c
            .checked_sub(1)
            .ok_or(TraceError::CountUnderflow { step, state: s })?;
    }
    counts[p2 as usize] += 1;
    counts[q2 as usize] += 1;
    Ok(())
}

/// Apply one lifecycle event to a count vector.
fn apply_lifecycle(
    counts: &mut [u64],
    step: u64,
    kind: LifecycleKind,
    state: u16,
) -> Result<(), TraceError> {
    match kind {
        LifecycleKind::Join => counts[state as usize] += 1,
        LifecycleKind::Leave | LifecycleKind::Crash => {
            let c = &mut counts[state as usize];
            *c = c
                .checked_sub(1)
                .ok_or(TraceError::CountUnderflow { step, state })?;
        }
    }
    Ok(())
}

/// One snapshot in a [`TraceIndex`]: the configuration after the first
/// `applied` records. Keyed by record position rather than step because
/// a lifecycle record may share its step with the preceding interaction
/// (zero step delta), making steps alone ambiguous resume points.
#[derive(Clone, Debug)]
struct Checkpoint {
    /// Number of records consumed to reach this snapshot.
    applied: usize,
    /// Step of the last record consumed (0 for the initial snapshot).
    step: u64,
    /// Configuration counts at this point.
    counts: Vec<u64>,
}

/// Evenly spaced configuration checkpoints over a trace, for random
/// access to "configuration at step t" without replaying from the start.
#[derive(Clone, Debug)]
pub struct TraceIndex {
    stride: usize,
    /// Snapshots in record order; the first is the initial configuration.
    checkpoints: Vec<Checkpoint>,
}

impl TraceIndex {
    /// Number of checkpoints held (including the initial configuration).
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether only the initial checkpoint exists.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.len() <= 1
    }

    /// Checkpoint stride in count-changing records.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The configuration after interaction `t`, resuming from the nearest
    /// preceding checkpoint. O(`stride`) record applications.
    pub fn config_at(&self, trace: &Trace, t: u64) -> Result<Vec<u64>, TraceError> {
        let i = self
            .checkpoints
            .partition_point(|c| c.step <= t)
            .saturating_sub(1);
        let cp = &self.checkpoints[i];
        let mut counts = cp.counts.clone();
        for rec in &trace.records[cp.applied..] {
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    if step > t {
                        break;
                    }
                    apply(&mut counts, step, p, q, p2, q2)?;
                }
                TraceRecord::IdentityRun { last_step, .. } => {
                    if last_step > t {
                        break;
                    }
                }
                TraceRecord::Lifecycle { step, kind, state } => {
                    if step > t {
                        break;
                    }
                    apply_lifecycle(&mut counts, step, kind, state)?;
                }
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceKernel;
    use crate::recorder::TraceRecorder;
    use pp_engine::observer::Observer;
    use pp_engine::protocol::StateId;

    fn toy_trace() -> Vec<u8> {
        let header = TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into(), "b".into()],
            n: 4,
            seed: 9,
            kernel: TraceKernel::Naive,
            initial_counts: vec![4, 0],
        };
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header);
        rec.on_interaction(1, a, a, b, b, &[2, 2]);
        rec.on_interaction(2, a, b, a, b, &[2, 2]); // identity, coalesced
        rec.on_interaction(3, a, a, b, b, &[0, 4]);
        rec.finish(&[0, 4])
    }

    #[test]
    fn decode_replay_round_trip() {
        let bytes = toy_trace();
        let trace = Trace::decode(&bytes).unwrap();
        assert_eq!(trace.header.n, 4);
        assert_eq!(trace.effective_len(), 2);
        assert_eq!(trace.identity_total(), 1);
        let summary = trace.replay().unwrap();
        assert_eq!(summary.interactions, 3);
        assert_eq!(summary.final_counts, vec![0, 4]);
    }

    #[test]
    fn config_at_is_stepwise() {
        let trace = Trace::decode(&toy_trace()).unwrap();
        assert_eq!(trace.config_at(0).unwrap(), vec![4, 0]);
        assert_eq!(trace.config_at(1).unwrap(), vec![2, 2]);
        assert_eq!(trace.config_at(2).unwrap(), vec![2, 2]);
        assert_eq!(trace.config_at(3).unwrap(), vec![0, 4]);
        assert_eq!(trace.config_at(99).unwrap(), vec![0, 4]);
        let idx = trace.index(1);
        for t in 0..=4 {
            assert_eq!(
                idx.config_at(&trace, t).unwrap(),
                trace.config_at(t).unwrap()
            );
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = toy_trace();
        for len in 0..bytes.len() {
            let err = Trace::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated
                        | TraceError::BadMagic
                        | TraceError::ChecksumMismatch { .. }
                ),
                "unexpected error at prefix {len}: {err:?}"
            );
        }
    }

    /// A trace with churn: the index must resume correctly even when a
    /// lifecycle record shares its step with an interaction (zero delta).
    fn churn_trace() -> Vec<u8> {
        let header = TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into(), "b".into()],
            n: 4,
            seed: 3,
            kernel: TraceKernel::Naive,
            initial_counts: vec![4, 0],
        };
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header);
        rec.on_interaction(1, a, a, b, b, &[2, 2]);
        rec.on_lifecycle(1, LifecycleKind::Join, b, &[2, 3]);
        rec.on_interaction(3, a, a, b, b, &[0, 5]);
        rec.on_lifecycle(3, LifecycleKind::Leave, b, &[0, 4]);
        rec.on_lifecycle(3, LifecycleKind::Crash, b, &[0, 3]);
        rec.finish(&[0, 3])
    }

    #[test]
    fn lifecycle_shifts_population_and_config_at() {
        let trace = Trace::decode(&churn_trace()).unwrap();
        let summary = trace.replay().unwrap();
        assert_eq!(summary.lifecycle, 3);
        assert_eq!(summary.final_counts, vec![0, 3]);
        assert_eq!(trace.config_at(0).unwrap(), vec![4, 0]);
        // Step 1 includes the interaction AND the same-step join.
        assert_eq!(trace.config_at(1).unwrap(), vec![2, 3]);
        assert_eq!(trace.config_at(2).unwrap(), vec![2, 3]);
        assert_eq!(trace.config_at(3).unwrap(), vec![0, 3]);
        // Every stride must agree with the linear scan, including
        // strides that checkpoint mid-way through a same-step cluster.
        for stride in 1..=6 {
            let idx = trace.index(stride);
            for t in 0..=4 {
                assert_eq!(
                    idx.config_at(&trace, t).unwrap(),
                    trace.config_at(t).unwrap(),
                    "stride {stride}, t {t}"
                );
            }
        }
    }

    #[test]
    fn lifecycle_underflow_and_bad_kind_rejected() {
        let header = TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into(), "b".into()],
            n: 2,
            seed: 0,
            kernel: TraceKernel::Naive,
            initial_counts: vec![2, 0],
        };
        // Removing from an empty state underflows during replay.
        let mut rec = TraceRecorder::new(&header);
        rec.on_lifecycle(1, LifecycleKind::Leave, StateId(1), &[2, 0]);
        rec.on_lifecycle(1, LifecycleKind::Join, StateId(1), &[2, 0]);
        let bytes = rec.finish(&[2, 0]);
        let trace = Trace::decode(&bytes).unwrap();
        assert!(matches!(
            trace.replay(),
            Err(TraceError::CountUnderflow { step: 1, state: 1 })
        ));
        // An unknown lifecycle kind code is rejected at decode time:
        // patch the kind byte (tag, delta, kind, state = 4 trailing
        // varint bytes before the footer in this tiny trace).
        let mut rec = TraceRecorder::new(&header);
        rec.on_lifecycle(1, LifecycleKind::Join, StateId(0), &[3, 0]);
        let mut bytes = rec.finish(&[3, 0]);
        let kind_pos = bytes.len() - 8 - 1 - 2 - 1 - 1; // checksum, footer counts+tag, state
        assert_eq!(bytes[kind_pos], LifecycleKind::Join.code() as u8);
        bytes[kind_pos] = 9;
        // Checksum now stale; recompute so the kind check is what trips.
        let body = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Trace::decode(&bytes),
            Err(TraceError::Malformed {
                what: "unknown lifecycle kind"
            })
        ));
    }

    #[test]
    fn footer_must_sum_to_n_plus_net_churn() {
        let header = TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into()],
            n: 2,
            seed: 0,
            kernel: TraceKernel::Naive,
            initial_counts: vec![2],
        };
        let mut rec = TraceRecorder::new(&header);
        rec.on_lifecycle(1, LifecycleKind::Join, StateId(0), &[3]);
        // Footer claims the pre-churn population: must be rejected.
        let bytes = rec.finish(&[2]);
        assert!(matches!(
            Trace::decode(&bytes),
            Err(TraceError::BadHeader {
                what: "final counts do not sum to n plus net churn"
            })
        ));
    }

    #[test]
    fn corruption_rejected() {
        let bytes = toy_trace();
        // Flip one bit somewhere in the middle of the record section.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        assert!(Trace::decode(&bad).is_err(), "bit flip accepted");
        // Trailing garbage after the checksum.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Trace::decode(&long),
            Err(TraceError::TrailingBytes { .. })
        ));
        // Checksum bytes corrupted directly.
        let mut sum = bytes;
        let last = sum.len() - 1;
        sum[last] ^= 0xff;
        assert!(matches!(
            Trace::decode(&sum),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }
}
