//! Decoding and deterministic replay.
//!
//! [`Trace::decode`] parses and validates a byte stream (magic, header,
//! records, footer, checksum, no trailing bytes). [`Trace::replay`]
//! re-applies the records to the header's initial configuration and
//! verifies the result is bit-identical to the footer's final counts —
//! which, for a trace recorded from a live run, are the live run's final
//! counts, making replay an end-to-end correctness oracle for both
//! kernels. [`Trace::index`] adds random access to "configuration at
//! step t" via evenly spaced checkpoints.

use crate::format::{
    decode_header, fnv1a64, Reader, TraceError, TraceHeader, TraceRecord, TAG_EFFECTIVE,
    TAG_FOOTER, TAG_IDENTITY_RUN,
};
use pp_engine::protocol::{CompiledProtocol, StateId};

/// A fully decoded trace: header, records (absolute steps), final counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The run's identity: protocol, population, seed, kernel.
    pub header: TraceHeader,
    /// Records in step order, with absolute interaction numbers.
    pub records: Vec<TraceRecord>,
    /// Final configuration stored in the footer.
    pub final_counts: Vec<u64>,
}

/// Aggregate numbers produced by a successful replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Total interactions covered (effective + identity).
    pub interactions: u64,
    /// Effective interactions replayed.
    pub effective: u64,
    /// Identity interactions covered by identity-run records.
    pub identity: u64,
    /// The replayed final configuration (equals the footer's).
    pub final_counts: Vec<u64>,
}

impl Trace {
    /// Decode and validate a complete trace stream.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut r = Reader::new(bytes);
        let header = decode_header(&mut r)?;
        let s = header.state_names.len();
        let mut records = Vec::new();
        let mut step = 0u64;
        loop {
            let tag = r.varint()?;
            match tag {
                TAG_EFFECTIVE => {
                    let dstep = r.varint()?;
                    if dstep == 0 {
                        return Err(TraceError::Malformed {
                            what: "zero step delta",
                        });
                    }
                    step = step.checked_add(dstep).ok_or(TraceError::Malformed {
                        what: "step overflow",
                    })?;
                    let mut ids = [0u16; 4];
                    for slot in &mut ids {
                        let v = r.varint()?;
                        if v > u16::MAX as u64 {
                            return Err(TraceError::Malformed {
                                what: "state id overflows u16",
                            });
                        }
                        *slot = v as u16;
                    }
                    let [p, q, p2, q2] = ids;
                    for id in ids {
                        if id as usize >= s {
                            return Err(TraceError::StateOutOfRange { step, state: id });
                        }
                    }
                    if p == p2 && q == q2 {
                        return Err(TraceError::Malformed {
                            what: "identity encoded as effective record",
                        });
                    }
                    records.push(TraceRecord::Effective { step, p, q, p2, q2 });
                }
                TAG_IDENTITY_RUN => {
                    let dlast = r.varint()?;
                    let skipped = r.varint()?;
                    if dlast == 0 || skipped == 0 || skipped > dlast {
                        return Err(TraceError::Malformed {
                            what: "inconsistent identity run",
                        });
                    }
                    step = step.checked_add(dlast).ok_or(TraceError::Malformed {
                        what: "step overflow",
                    })?;
                    records.push(TraceRecord::IdentityRun {
                        last_step: step,
                        skipped,
                    });
                }
                TAG_FOOTER => {
                    let mut final_counts = Vec::with_capacity(s);
                    for _ in 0..s {
                        final_counts.push(r.varint()?);
                    }
                    let body_len = r.pos();
                    let stored =
                        u64::from_le_bytes(r.take(8)?.try_into().expect("take(8) returns 8 bytes"));
                    if r.remaining() > 0 {
                        return Err(TraceError::TrailingBytes {
                            extra: r.remaining(),
                        });
                    }
                    let computed = fnv1a64(&bytes[..body_len]);
                    if stored != computed {
                        return Err(TraceError::ChecksumMismatch { stored, computed });
                    }
                    if final_counts.iter().sum::<u64>() != header.n {
                        return Err(TraceError::BadHeader {
                            what: "final counts do not sum to n",
                        });
                    }
                    return Ok(Trace {
                        header,
                        records,
                        final_counts,
                    });
                }
                tag => return Err(TraceError::UnknownTag { tag }),
            }
        }
    }

    /// The last interaction number any record covers (0 for empty traces).
    pub fn last_step(&self) -> u64 {
        self.records.last().map_or(0, TraceRecord::last_step)
    }

    /// Number of effective-interaction records.
    pub fn effective_len(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Effective { .. }))
            .count() as u64
    }

    /// Total identity interactions covered by identity-run records.
    pub fn identity_total(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                TraceRecord::IdentityRun { skipped, .. } => *skipped,
                _ => 0,
            })
            .sum()
    }

    /// Replay the records against the initial configuration.
    ///
    /// Verifies counts never go negative and that the replayed final
    /// configuration is *bit-identical* to the footer's. Does not need
    /// the protocol; see [`Trace::replay_checked`] for δ-conformance.
    pub fn replay(&self) -> Result<ReplaySummary, TraceError> {
        self.replay_inner(None)
    }

    /// Like [`Trace::replay`], but additionally verifies every effective
    /// record agrees with `proto`'s transition function and that every
    /// recorded pair in an identity run *could* be an identity (the pair
    /// itself is not recorded, so only effective records are checked
    /// exactly).
    pub fn replay_checked(&self, proto: &CompiledProtocol) -> Result<ReplaySummary, TraceError> {
        if proto.num_states() != self.header.state_names.len() {
            return Err(TraceError::BadHeader {
                what: "protocol state count differs from header",
            });
        }
        self.replay_inner(Some(proto))
    }

    fn replay_inner(&self, proto: Option<&CompiledProtocol>) -> Result<ReplaySummary, TraceError> {
        let mut counts = self.header.initial_counts.clone();
        let mut effective = 0u64;
        let mut identity = 0u64;
        for rec in &self.records {
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    if let Some(proto) = proto {
                        let (e2, f2) = proto.delta(StateId(p), StateId(q));
                        if (e2, f2) != (StateId(p2), StateId(q2)) {
                            return Err(TraceError::DeltaMismatch { step });
                        }
                    }
                    apply(&mut counts, step, p, q, p2, q2)?;
                    effective += 1;
                }
                TraceRecord::IdentityRun { skipped, .. } => identity += skipped,
            }
        }
        if counts != self.final_counts {
            return Err(TraceError::FinalCountsMismatch);
        }
        Ok(ReplaySummary {
            interactions: self.last_step(),
            effective,
            identity,
            final_counts: counts,
        })
    }

    /// The configuration after interaction `t` (`t = 0` is the initial
    /// configuration). Linear in the number of records before `t`; for
    /// repeated queries build a [`TraceIndex`].
    pub fn config_at(&self, t: u64) -> Result<Vec<u64>, TraceError> {
        let mut counts = self.header.initial_counts.clone();
        for rec in &self.records {
            match *rec {
                TraceRecord::Effective { step, p, q, p2, q2 } => {
                    if step > t {
                        break;
                    }
                    apply(&mut counts, step, p, q, p2, q2)?;
                }
                // Identity runs never change counts; skip them.
                TraceRecord::IdentityRun { .. } => {}
            }
        }
        Ok(counts)
    }

    /// Build a checkpoint index with one snapshot every `stride` effective
    /// records (`stride ≥ 1`), enabling O(stride) random access.
    pub fn index(&self, stride: usize) -> TraceIndex {
        assert!(stride >= 1, "index stride must be at least 1");
        let mut checkpoints = vec![(0u64, self.header.initial_counts.clone())];
        let mut counts = self.header.initial_counts.clone();
        let mut since = 0usize;
        for rec in &self.records {
            if let TraceRecord::Effective { step, p, q, p2, q2 } = *rec {
                // Records decoded by `Trace::decode` cannot underflow n,
                // but tolerate hand-built traces by saturating here; the
                // authoritative check lives in `replay`.
                let _ = apply(&mut counts, step, p, q, p2, q2);
                since += 1;
                if since == stride {
                    checkpoints.push((step, counts.clone()));
                    since = 0;
                }
            }
        }
        TraceIndex {
            stride,
            checkpoints,
        }
    }
}

/// Apply one effective transition to a count vector.
fn apply(
    counts: &mut [u64],
    step: u64,
    p: u16,
    q: u16,
    p2: u16,
    q2: u16,
) -> Result<(), TraceError> {
    for s in [p, q] {
        let c = &mut counts[s as usize];
        *c = c
            .checked_sub(1)
            .ok_or(TraceError::CountUnderflow { step, state: s })?;
    }
    counts[p2 as usize] += 1;
    counts[q2 as usize] += 1;
    Ok(())
}

/// Evenly spaced configuration checkpoints over a trace, for random
/// access to "configuration at step t" without replaying from the start.
#[derive(Clone, Debug)]
pub struct TraceIndex {
    stride: usize,
    /// `(step, counts)` snapshots; the first is `(0, initial)`.
    checkpoints: Vec<(u64, Vec<u64>)>,
}

impl TraceIndex {
    /// Number of checkpoints held (including the initial configuration).
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether only the initial checkpoint exists.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.len() <= 1
    }

    /// Checkpoint stride in effective records.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The configuration after interaction `t`, resuming from the nearest
    /// preceding checkpoint. O(`stride`) record applications.
    pub fn config_at(&self, trace: &Trace, t: u64) -> Result<Vec<u64>, TraceError> {
        let i = self
            .checkpoints
            .partition_point(|(step, _)| *step <= t)
            .saturating_sub(1);
        let (from_step, base) = &self.checkpoints[i];
        let mut counts = base.clone();
        for rec in &trace.records {
            if let TraceRecord::Effective { step, p, q, p2, q2 } = *rec {
                if step <= *from_step {
                    continue;
                }
                if step > t {
                    break;
                }
                apply(&mut counts, step, p, q, p2, q2)?;
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceKernel;
    use crate::recorder::TraceRecorder;
    use pp_engine::observer::Observer;
    use pp_engine::protocol::StateId;

    fn toy_trace() -> Vec<u8> {
        let header = TraceHeader {
            protocol: "toy".into(),
            state_names: vec!["a".into(), "b".into()],
            n: 4,
            seed: 9,
            kernel: TraceKernel::Naive,
            initial_counts: vec![4, 0],
        };
        let a = StateId(0);
        let b = StateId(1);
        let mut rec = TraceRecorder::new(&header);
        rec.on_interaction(1, a, a, b, b, &[2, 2]);
        rec.on_interaction(2, a, b, a, b, &[2, 2]); // identity, coalesced
        rec.on_interaction(3, a, a, b, b, &[0, 4]);
        rec.finish(&[0, 4])
    }

    #[test]
    fn decode_replay_round_trip() {
        let bytes = toy_trace();
        let trace = Trace::decode(&bytes).unwrap();
        assert_eq!(trace.header.n, 4);
        assert_eq!(trace.effective_len(), 2);
        assert_eq!(trace.identity_total(), 1);
        let summary = trace.replay().unwrap();
        assert_eq!(summary.interactions, 3);
        assert_eq!(summary.final_counts, vec![0, 4]);
    }

    #[test]
    fn config_at_is_stepwise() {
        let trace = Trace::decode(&toy_trace()).unwrap();
        assert_eq!(trace.config_at(0).unwrap(), vec![4, 0]);
        assert_eq!(trace.config_at(1).unwrap(), vec![2, 2]);
        assert_eq!(trace.config_at(2).unwrap(), vec![2, 2]);
        assert_eq!(trace.config_at(3).unwrap(), vec![0, 4]);
        assert_eq!(trace.config_at(99).unwrap(), vec![0, 4]);
        let idx = trace.index(1);
        for t in 0..=4 {
            assert_eq!(
                idx.config_at(&trace, t).unwrap(),
                trace.config_at(t).unwrap()
            );
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = toy_trace();
        for len in 0..bytes.len() {
            let err = Trace::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated
                        | TraceError::BadMagic
                        | TraceError::ChecksumMismatch { .. }
                ),
                "unexpected error at prefix {len}: {err:?}"
            );
        }
    }

    #[test]
    fn corruption_rejected() {
        let bytes = toy_trace();
        // Flip one bit somewhere in the middle of the record section.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        assert!(Trace::decode(&bad).is_err(), "bit flip accepted");
        // Trailing garbage after the checksum.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Trace::decode(&long),
            Err(TraceError::TrailingBytes { .. })
        ));
        // Checksum bytes corrupted directly.
        let mut sum = bytes;
        let last = sum.len() - 1;
        sum[last] ^= 0xff;
        assert!(matches!(
            Trace::decode(&sum),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }
}
