//! `pp-trace`: recordable, replayable execution traces with
//! protocol-semantic convergence diagnostics.
//!
//! pp-telemetry (the workspace's metrics tier) answers *how much*; this
//! crate answers *why*. It records executions of either simulation
//! kernel through the engine's `Observer` hook into a compact
//! varint/delta on-disk format, replays them deterministically against
//! the initial configuration (verifying bit-identity with the live run,
//! which makes replay a correctness oracle for the leap kernel), and —
//! for the paper's k-partition protocol — classifies every effective
//! interaction into one of Algorithm 1's ten rules, folding the stream
//! into chain-lifecycle events (births, advances, completions, aborts,
//! demolition walk-backs) and checking Lemma 1's invariant online.
//!
//! * [`format`] — the byte-level trace format: varints, header, records,
//!   checksummed footer, typed decode errors.
//! * [`recorder`] — [`TraceRecorder`], an `Observer` that encodes a live
//!   run without touching the simulator's hot loops.
//! * [`replay`] — [`Trace`]: decode, deterministic replay, δ-checked
//!   replay, and random access to "configuration at step t".
//! * [`classify`] — rule attribution, lifecycle [`Event`]s, and the
//!   online Lemma-1 checker.
//! * [`live`] — record a live k-partition run; verify a trace against a
//!   bit-identical re-run.
//! * [`export`] — trace/rule/lifecycle series in the pp-telemetry
//!   registry.
//! * [`cli`] — the `pp-trace` binary (`record`, `info`, `events`,
//!   `replay`, `verify`, `lemma1`).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod classify;
// The CLI surface prints to stdout by design.
#[allow(clippy::print_stdout)]
pub mod cli;
pub mod export;
pub mod format;
pub mod live;
pub mod recorder;
pub mod replay;

pub use classify::{check_lemma1, classify, Diagnostics, Event, Lemma1Report};
pub use format::{TraceError, TraceHeader, TraceKernel, TraceRecord};
pub use live::{record_kpartition, verify_against_live, RecordOutcome, VerifyReport};
pub use recorder::TraceRecorder;
pub use replay::{ReplaySummary, Trace, TraceIndex};
