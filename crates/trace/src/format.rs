//! The on-disk trace format: varint/delta encoding, header, records,
//! checksummed footer.
//!
//! A trace file is a single byte stream:
//!
//! ```text
//! magic    "PPTRACE1"                                    (8 bytes)
//! header   protocol name, state names, n, seed, kernel,
//!          initial counts                                (varints + strings)
//! records  tag 0: effective  (Δstep, p, q, p2, q2)       (varints)
//!          tag 1: identity   (Δlast, skipped)            (varints)
//!          tag 3: lifecycle  (Δstep, kind, state)        (varints)
//! footer   tag 2: final counts, FNV-1a-64 checksum       (varints + 8 bytes LE)
//! ```
//!
//! All integers are LEB128 varints; steps are *deltas* against the last
//! step covered by the previous record, so a trace of a converging run
//! costs a few bytes per effective interaction regardless of how many
//! identity interactions separate them. Lifecycle records (churn events
//! from `pp-topo`'s dynamics runner) happen *between* interactions, so
//! their step delta may be zero — the event follows the interaction the
//! previous record ended on. They change the population size: the
//! header's `n` is the *initial* population, and the footer's counts sum
//! to `n` plus the net of all lifecycle records. The checksum covers every byte
//! from the magic up to (excluding) the checksum itself; decoding rejects
//! bad magic, truncation, trailing garbage, and checksum mismatches with
//! a typed [`TraceError`], mirroring the sweep journal's
//! torn-tail-discard philosophy — except that a trace, unlike a journal,
//! is written once and must be complete, so corruption is an error rather
//! than a recoverable prefix.

use pp_engine::observer::LifecycleKind;
use std::fmt;

/// Magic bytes opening every trace file (format version 1).
pub const TRACE_MAGIC: &[u8; 8] = b"PPTRACE1";

/// Record tag: an effective (state-changing) interaction.
pub const TAG_EFFECTIVE: u64 = 0;
/// Record tag: a run of consecutive identity interactions.
pub const TAG_IDENTITY_RUN: u64 = 1;
/// Record tag: the footer (final counts + checksum); ends the stream.
pub const TAG_FOOTER: u64 = 2;
/// Record tag: a lifecycle event (join/leave/crash) applied by a dynamics
/// layer between interactions.
pub const TAG_LIFECYCLE: u64 = 3;

/// Which simulation kernel produced a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKernel {
    /// One interaction per loop iteration (`Simulator::run`).
    Naive,
    /// Batched identity-skipping kernel (`Simulator::run_leap`).
    Leap,
}

impl TraceKernel {
    /// Wire encoding of the kernel tag.
    pub fn code(self) -> u64 {
        match self {
            TraceKernel::Naive => 0,
            TraceKernel::Leap => 1,
        }
    }

    /// Decode a wire kernel tag.
    pub fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(TraceKernel::Naive),
            1 => Some(TraceKernel::Leap),
            _ => None,
        }
    }

    /// Lower-case name, as used by the `PP_KERNEL` knob.
    pub fn name(self) -> &'static str {
        match self {
            TraceKernel::Naive => "naive",
            TraceKernel::Leap => "leap",
        }
    }
}

impl fmt::Display for TraceKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything needed to re-run or replay the recorded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Protocol name (e.g. `uniform-4-partition`).
    pub protocol: String,
    /// State names in id order; fixes `|Q|` and the meaning of indices.
    pub state_names: Vec<String>,
    /// Population size.
    pub n: u64,
    /// Scheduler seed of the live run.
    pub seed: u64,
    /// Kernel that produced the trace.
    pub kernel: TraceKernel,
    /// Configuration before the first interaction, one count per state.
    pub initial_counts: Vec<u64>,
}

/// One decoded trace record, with *absolute* step numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceRecord {
    /// An effective interaction `(p, q) → (p2, q2)` at `step` (1-based).
    Effective {
        /// Interaction number, 1-based.
        step: u64,
        /// Initiator state before.
        p: u16,
        /// Responder state before.
        q: u16,
        /// Initiator state after.
        p2: u16,
        /// Responder state after.
        q2: u16,
    },
    /// `skipped` consecutive identity interactions ending at `last_step`.
    IdentityRun {
        /// Interaction number of the last identity in the run.
        last_step: u64,
        /// Length of the run (`≥ 1`).
        skipped: u64,
    },
    /// A lifecycle event applied after interaction `step` (before
    /// `step + 1`): a join adds one agent in `state`, a leave/crash
    /// removes one agent whose last state was `state`.
    Lifecycle {
        /// Interaction count when the event was applied (may equal the
        /// previous record's last step — the event sits between
        /// interactions).
        step: u64,
        /// Join, leave, or crash.
        kind: LifecycleKind,
        /// The joining agent's initial state or the departing agent's
        /// last state.
        state: u16,
    },
}

impl TraceRecord {
    /// The last interaction number this record covers.
    pub fn last_step(&self) -> u64 {
        match *self {
            TraceRecord::Effective { step, .. } => step,
            TraceRecord::IdentityRun { last_step, .. } => last_step,
            TraceRecord::Lifecycle { step, .. } => step,
        }
    }

    /// Population-size delta this record applies (±1 for lifecycle
    /// records, 0 otherwise).
    pub fn population_delta(&self) -> i64 {
        match self {
            TraceRecord::Lifecycle { kind, .. } => match kind {
                LifecycleKind::Join => 1,
                LifecycleKind::Leave | LifecycleKind::Crash => -1,
            },
            _ => 0,
        }
    }
}

/// Errors raised while decoding or replaying a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The stream does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The stream ended before a complete header/record/footer.
    Truncated,
    /// Bytes remain after the footer's checksum.
    TrailingBytes {
        /// How many extra bytes follow the footer.
        extra: usize,
    },
    /// The stored checksum does not match the stream contents.
    ChecksumMismatch {
        /// Checksum stored in the footer.
        stored: u64,
        /// Checksum recomputed over the stream.
        computed: u64,
    },
    /// A record carries an unknown tag.
    UnknownTag {
        /// The offending tag value.
        tag: u64,
    },
    /// A varint overflows 64 bits or a delta is zero where `≥ 1` is required.
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
    /// A record references a state outside the header's state set.
    StateOutOfRange {
        /// Step of the offending record.
        step: u64,
        /// The state index.
        state: u16,
    },
    /// Replay drove a state's count below zero.
    CountUnderflow {
        /// Step of the offending record.
        step: u64,
        /// The state whose count underflowed.
        state: u16,
    },
    /// A record's transition disagrees with the protocol's `δ`.
    DeltaMismatch {
        /// Step of the offending record.
        step: u64,
    },
    /// Replayed final counts differ from the footer's.
    FinalCountsMismatch,
    /// Header invariants violated (e.g. counts don't sum to `n`).
    BadHeader {
        /// What was inconsistent.
        what: &'static str,
    },
    /// A live re-run from the header diverged from the trace.
    LiveDiverged {
        /// Which quantity diverged.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after footer")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::UnknownTag { tag } => write!(f, "unknown record tag {tag}"),
            TraceError::Malformed { what } => write!(f, "malformed trace: {what}"),
            TraceError::StateOutOfRange { step, state } => {
                write!(f, "state q{state} out of range at step {step}")
            }
            TraceError::CountUnderflow { step, state } => {
                write!(f, "count of state q{state} underflows at step {step}")
            }
            TraceError::DeltaMismatch { step } => {
                write!(f, "recorded transition disagrees with δ at step {step}")
            }
            TraceError::FinalCountsMismatch => {
                write!(f, "replayed final counts differ from footer")
            }
            TraceError::BadHeader { what } => write!(f, "bad trace header: {what}"),
            TraceError::LiveDiverged { what } => {
                write!(f, "live re-run diverged from trace: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// FNV-1a 64-bit over `bytes` — same function the sweep store uses for
/// content addressing, duplicated here so the trace layer stays below
/// the sweep in the dependency order.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over trace bytes with varint/string readers.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = *self.bytes.get(self.pos).ok_or(TraceError::Truncated)?;
            self.pos += 1;
            if shift == 63 && b > 1 {
                return Err(TraceError::Malformed {
                    what: "varint overflows u64",
                });
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::Malformed {
                    what: "varint overflows u64",
                });
            }
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, TraceError> {
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| TraceError::Malformed {
            what: "string is not UTF-8",
        })
    }
}

/// Encode `header` (including the magic) into a fresh buffer.
pub fn encode_header(header: &TraceHeader) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(TRACE_MAGIC);
    put_str(&mut buf, &header.protocol);
    put_varint(&mut buf, header.state_names.len() as u64);
    for name in &header.state_names {
        put_str(&mut buf, name);
    }
    put_varint(&mut buf, header.n);
    put_varint(&mut buf, header.seed);
    put_varint(&mut buf, header.kernel.code());
    debug_assert_eq!(header.initial_counts.len(), header.state_names.len());
    for &c in &header.initial_counts {
        put_varint(&mut buf, c);
    }
    buf
}

/// Decode the magic + header from the front of a stream.
pub fn decode_header(r: &mut Reader<'_>) -> Result<TraceHeader, TraceError> {
    if r.take(TRACE_MAGIC.len())? != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let protocol = r.string()?;
    let s = r.varint()? as usize;
    if s == 0 || s > u16::MAX as usize {
        return Err(TraceError::BadHeader {
            what: "state count out of range",
        });
    }
    let mut state_names = Vec::with_capacity(s);
    for _ in 0..s {
        state_names.push(r.string()?);
    }
    let n = r.varint()?;
    let seed = r.varint()?;
    let kernel = TraceKernel::from_code(r.varint()?).ok_or(TraceError::BadHeader {
        what: "unknown kernel tag",
    })?;
    let mut initial_counts = Vec::with_capacity(s);
    for _ in 0..s {
        initial_counts.push(r.varint()?);
    }
    if initial_counts.iter().sum::<u64>() != n {
        return Err(TraceError::BadHeader {
            what: "initial counts do not sum to n",
        });
    }
    Ok(TraceHeader {
        protocol,
        state_names,
        n,
        seed,
        kernel,
        initial_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_edges() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 continuation bytes of 0xff encode > 64 bits.
        let buf = vec![0xffu8; 10];
        assert!(matches!(
            Reader::new(&buf).varint(),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn header_round_trip() {
        let h = TraceHeader {
            protocol: "uniform-3-partition".into(),
            state_names: vec!["initial".into(), "initial'".into(), "g1".into()],
            n: 10,
            seed: 42,
            kernel: TraceKernel::Leap,
            initial_counts: vec![10, 0, 0],
        };
        let buf = encode_header(&h);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_header(&mut r).unwrap(), h);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn header_count_sum_validated() {
        let h = TraceHeader {
            protocol: "p".into(),
            state_names: vec!["a".into()],
            n: 5,
            seed: 0,
            kernel: TraceKernel::Naive,
            initial_counts: vec![4],
        };
        let buf = encode_header(&h);
        assert!(matches!(
            decode_header(&mut Reader::new(&buf)),
            Err(TraceError::BadHeader { .. })
        ));
    }
}
