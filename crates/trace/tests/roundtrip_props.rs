//! Property tests of the trace round trip: encode → decode → replay is
//! the identity on final configurations, for both kernels, over arbitrary
//! protocols and over the paper's k-partition family with live-run
//! bit-identity verification.

use pp_engine::population::{CountPopulation, Population};
use pp_engine::protocol::{CompiledProtocol, StateId};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::{RunError, Simulator};
use pp_engine::spec::ProtocolSpec;
use pp_engine::stability::Silent;
use pp_trace::{
    check_lemma1, record_kpartition, verify_against_live, Lemma1Report, Trace, TraceKernel,
    TraceRecorder,
};
use proptest::prelude::*;

/// A random small protocol, derived entirely from the seed so failing
/// cases reproduce.
fn arb_protocol() -> impl Strategy<Value = CompiledProtocol> {
    (2usize..6, 0usize..12, any::<u64>()).prop_map(|(num_states, num_rules, seed)| {
        let mut z = seed;
        let mut next = move || {
            z = z
                .wrapping_add(0x9E3779B97F4A7C15)
                .rotate_left(17)
                .wrapping_mul(0x2545F4914F6CDD1D);
            z
        };
        let mut spec = ProtocolSpec::new("random");
        for i in 0..num_states {
            spec.add_state(format!("s{i}"), (next() % 3 + 1) as u16);
        }
        spec.set_initial(StateId(0));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..num_rules {
            let s = |v: u64| StateId((v % num_states as u64) as u16);
            let (p, q, p2, q2) = (s(next()), s(next()), s(next()), s(next()));
            if seen.insert((p, q)) {
                spec.add_rule(p, q, p2, q2);
            }
        }
        spec.compile().expect("deduped rules always compile")
    })
}

fn kernel_of(leap: bool) -> TraceKernel {
    if leap {
        TraceKernel::Leap
    } else {
        TraceKernel::Naive
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Record an arbitrary protocol under either kernel, then decode and
    /// δ-checked-replay the trace: the replayed configuration must equal
    /// the live run's, record for record, and random access at the last
    /// step must agree.
    #[test]
    fn replay_reproduces_live_final_counts(
        proto in arb_protocol(),
        n in 2u64..30,
        seed in any::<u64>(),
        leap in any::<bool>(),
    ) {
        let kernel = kernel_of(leap);
        let mut pop = CountPopulation::new(&proto, n);
        let mut sched = UniformRandomScheduler::from_seed(seed);
        let mut rec = TraceRecorder::for_run(&proto, &pop, seed, kernel);
        let sim = Simulator::new(&proto);
        // Arbitrary protocols may never silence; a budget keeps the runs
        // bounded and exercises the censored encode path too.
        let budget = 5_000;
        let res = match kernel {
            TraceKernel::Naive => {
                sim.run_observed(&mut pop, &mut sched, &Silent, budget, &mut rec)
            }
            TraceKernel::Leap => {
                sim.run_leap_observed(&mut pop, &mut sched, &Silent, budget, &mut rec)
            }
        };
        match res {
            Ok(_) | Err(RunError::InteractionLimit { .. }) => {}
            Err(e) => panic!("run failed: {e}"),
        }
        let bytes = rec.finish(pop.counts());
        let trace = Trace::decode(&bytes).unwrap();
        let summary = trace.replay_checked(&proto).unwrap();
        prop_assert_eq!(summary.final_counts.as_slice(), pop.counts());
        prop_assert_eq!(trace.final_counts.as_slice(), pop.counts());
        prop_assert_eq!(
            trace.config_at(trace.last_step()).unwrap().as_slice(),
            pop.counts()
        );
    }

    /// For the paper's protocol, close the full loop: the trace verifies
    /// bit-identical against an independent live re-run, and Lemma 1
    /// holds at every recorded configuration of a genuine execution.
    #[test]
    fn kpartition_traces_verify_and_satisfy_lemma1(
        k in 2usize..6,
        n in 2u64..40,
        seed in any::<u64>(),
        leap in any::<bool>(),
    ) {
        let kernel = kernel_of(leap);
        let out = record_kpartition(k, n, seed, kernel, None);
        let trace = Trace::decode(&out.bytes).unwrap();
        let report = verify_against_live(&trace).unwrap();
        prop_assert_eq!(report.live_interactions, out.interactions);
        prop_assert_eq!(report.censored, out.censored);
        prop_assert_eq!(trace.final_counts.as_slice(), out.final_counts.as_slice());
        match check_lemma1(&trace).unwrap() {
            Lemma1Report::Holds { checked } => {
                prop_assert_eq!(checked, trace.effective_len() + 1);
            }
            Lemma1Report::ViolatedAt { step, residual } => {
                panic!("lemma 1 violated at step {step}: {residual:?}")
            }
        }
    }
}
