//! Tracing the paper's worked examples (Figures 1 and 2) through the
//! classifier yields exactly the lifecycle the prose describes: Figure 1
//! is one chain born, advanced four times, and completed; Figure 2 is
//! two colliding chains aborting into demolishers that walk the settled
//! groups back to `initial`.

use pp_engine::population::Population;
use pp_engine::trace::ScriptedExecution;
use pp_protocols::kpartition::UniformKPartition;
use pp_trace::{
    check_lemma1, classify, Event, Lemma1Report, Trace, TraceHeader, TraceKernel, TraceRecorder,
};

/// Record a scripted execution's transition log as a trace: seed 0 is a
/// placeholder (scripted runs have no scheduler), steps number the
/// interactions from 1 exactly as the live kernels do.
fn trace_scripted(kp: &UniformKPartition, exec: &ScriptedExecution, initial: Vec<u64>) -> Trace {
    let proto = kp.compile();
    let header = TraceHeader {
        protocol: proto.name().to_string(),
        state_names: proto
            .states()
            .map(|s| proto.state_name(s).to_string())
            .collect(),
        n: initial.iter().sum(),
        seed: 0,
        kernel: TraceKernel::Naive,
        initial_counts: initial,
    };
    let mut rec = TraceRecorder::new(&header);
    use pp_engine::observer::Observer;
    for (idx, t) in exec.log().iter().enumerate() {
        rec.on_interaction(idx as u64 + 1, t.p, t.q, t.p2, t.q2, &[]);
    }
    Trace::decode(&rec.finish(exec.population().counts())).unwrap()
}

#[test]
fn figure1_trace_is_one_chain_born_advanced_completed() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    let mut exec = ScriptedExecution::new(&proto, 6);
    let initial = exec.population().counts().to_vec();
    // The exact interaction sequence of Figure 1 (see
    // tests/paper_examples.rs for the per-configuration assertions).
    exec.interact_all(&[(0, 1), (2, 3), (4, 5)]); // (a)->(b): rule 1 ×3
    exec.interact_all(&[(0, 5), (1, 2), (3, 4)]); // (b)->(c): rule 2 ×3
    exec.interact(4, 5); // (c)->(d): rule 1
    exec.interact(0, 5); // (d)->(e): rule 5 births the chain
    exec.interact_all(&[(5, 1), (5, 2), (5, 3)]); // rule 6 recruits
    exec.interact(5, 4); // rule 7 completes

    let trace = trace_scripted(&kp, &exec, initial);
    let diag = classify(&trace).unwrap();
    assert_eq!(diag.unattributed, 0);
    assert_eq!(
        diag.rule_firings
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(r, &c)| (r.as_str(), c))
            .collect::<Vec<_>>(),
        vec![("r1", 4), ("r2", 3), ("r5", 1), ("r6", 3), ("r7", 1)]
    );
    // The paper's happy path: birth, three recruits, completion — in order.
    assert_eq!(
        diag.events,
        vec![
            Event::ChainBirth { step: 8 },
            Event::BuilderAdvance { step: 9, level: 3 },
            Event::BuilderAdvance { step: 10, level: 4 },
            Event::BuilderAdvance { step: 11, level: 5 },
            Event::ChainCompletion { step: 12 },
        ]
    );
    assert!(matches!(
        check_lemma1(&trace).unwrap(),
        Lemma1Report::Holds { checked: 13 }
    ));
}

#[test]
fn figure2_trace_is_abort_then_demolition_walkback() {
    let kp = UniformKPartition::new(6);
    let proto = kp.compile();
    // Fig 2(a): two concurrently started chains (Lemma 1 forces #g1 = 2).
    let mut exec = ScriptedExecution::from_states(
        &proto,
        vec![
            kp.g(1),
            kp.g(1),
            kp.initial(),
            kp.initial(),
            kp.m(2),
            kp.m(2),
        ],
    );
    let initial = exec.population().counts().to_vec();
    exec.interact(2, 4); // rule 6: a5's chain recruits a3
    exec.interact(3, 4); // rule 6: … and a4
    exec.interact(4, 5); // (c)->(d): rule 8, m4 meets m2
    exec.interact(0, 5); // rule 10: d1 frees a g1
    exec.interact(3, 4); // rule 9: d3 walks to d2
    exec.interact(2, 4); // rule 9: d2 walks to d1
    exec.interact(1, 4); // rule 10: the second demolisher finishes

    let trace = trace_scripted(&kp, &exec, initial);
    let diag = classify(&trace).unwrap();
    assert_eq!(diag.unattributed, 0);
    assert_eq!(
        diag.events,
        vec![
            Event::BuilderAdvance { step: 1, level: 3 },
            Event::BuilderAdvance { step: 2, level: 4 },
            Event::ChainAbort {
                step: 3,
                i: 4,
                j: 2
            },
            Event::DemolitionComplete { step: 4 },
            Event::DemolitionStep { step: 5, level: 3 },
            Event::DemolitionStep { step: 6, level: 2 },
            Event::DemolitionComplete { step: 7 },
        ]
    );
    assert_eq!((diag.births, diag.completions), (0, 0));
    assert_eq!(diag.aborts, 1);
    assert_eq!(diag.demolitions, 2, "both chains demolished");
    // The abort-and-unwind never leaves the Lemma 1 surface.
    assert!(matches!(
        check_lemma1(&trace).unwrap(),
        Lemma1Report::Holds { checked: 8 }
    ));
}
