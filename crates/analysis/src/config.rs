//! Environment-tunable experiment configuration.
//!
//! Every consumer of the experiment stack — the legacy figure binaries,
//! the `pp-sweep` orchestrator, CI smoke runs — honours the same three
//! knobs, resolved here so they cannot drift apart:
//!
//! * `PP_TRIALS` — trials per cell (default 100, the paper's count);
//! * `PP_SEED` — master seed (default 20180725, the paper's submission
//!   date);
//! * `PP_RESULTS_DIR` — where CSVs, logs, and the `pp-sweep` result
//!   store live (default `<workspace root>/results`);
//! * `PP_KERNEL` — simulation kernel selection (`auto`, `leap`, `batch`,
//!   or `naive`; default `auto`).

use std::path::PathBuf;

/// The `PP_KERNEL` knob: which simulation kernel count-population runs
/// should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKnob {
    /// Let the runner pick (currently the leap kernel wherever its
    /// observer contract suffices; trajectory capture stays naive).
    Auto,
    /// Force the naive one-interaction-per-step loop.
    Naive,
    /// Force the leap kernel.
    Leap,
    /// Force the tau-leap batch kernel (bounded-error bulk firing with
    /// exact-leap fallback near convergence; see `pp_engine::batch`).
    Batch,
}

/// Kernel selection; `PP_KERNEL` ∈ {`auto`, `naive`, `leap`, `batch`}
/// (case-insensitive) overrides the default `auto`. Unrecognised values
/// fall back to `auto` rather than aborting, matching the other knobs'
/// lenient parsing.
pub fn kernel() -> KernelKnob {
    match std::env::var("PP_KERNEL")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "naive" => KernelKnob::Naive,
        "leap" => KernelKnob::Leap,
        "batch" => KernelKnob::Batch,
        _ => KernelKnob::Auto,
    }
}

/// Trials per data point; `PP_TRIALS` overrides the paper's 100.
pub fn trials() -> usize {
    std::env::var("PP_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Master seed; `PP_SEED` overrides the default.
pub fn master_seed() -> u64 {
    std::env::var("PP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_180_725)
}

/// The results directory: `PP_RESULTS_DIR` if set, else `results/` under
/// the workspace root (resolved from this crate's compile-time location),
/// else `./results` as a last resort.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("PP_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

/// Path of a named artifact inside [`results_dir`].
pub fn results_path(name: &str) -> PathBuf {
    results_dir().join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        // Only valid when the env vars are unset, which is the test default.
        if std::env::var("PP_TRIALS").is_err() {
            assert_eq!(trials(), 100);
        }
        if std::env::var("PP_SEED").is_err() {
            assert_eq!(master_seed(), 20_180_725);
        }
    }

    // One test covers both the default and the override so no two tests
    // race on the PP_RESULTS_DIR process environment.
    #[test]
    fn results_path_resolution_and_override() {
        if std::env::var_os("PP_RESULTS_DIR").is_none() {
            let p = results_path("x.csv");
            assert!(p.to_string_lossy().contains("results"));
            assert!(p.to_string_lossy().ends_with("x.csv"));

            std::env::set_var("PP_RESULTS_DIR", "/tmp/pp-override");
            let p = results_path("y.csv");
            std::env::remove_var("PP_RESULTS_DIR");
            assert_eq!(p, PathBuf::from("/tmp/pp-override/y.csv"));
        }
    }
}
