//! Growth-law fitting for the paper's scaling claims.
//!
//! §5 concludes that the stabilisation time "increases exponentially with
//! `k` but not exponentially with `n`" and, for fixed `k`, "more than
//! linearly but less than exponentially with `n`". We quantify both with
//! ordinary least squares on transformed axes:
//!
//! * power law `y = a·x^b` — fit `ln y` against `ln x`
//!   ([`power_law_exponent`]); a finite, modest exponent with good fit
//!   supports "polynomial in n".
//! * exponential `y = a·c^x` — fit `ln y` against `x`
//!   ([`exponential_base`]); a base `c > 1` with good fit supports
//!   "exponential in k".

/// Ordinary least squares on `(x, y)`: returns `(slope, intercept, r²)`.
///
/// # Panics
/// If fewer than two points are supplied or all `x` are equal.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate x values");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

/// Fit `y = a·x^b`; returns `(b, r²)` of the log–log regression.
/// All coordinates must be strictly positive.
pub fn power_law_exponent(points: &[(f64, f64)]) -> (f64, f64) {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let (slope, _, r2) = linear_fit(&logs);
    (slope, r2)
}

/// Fit `y = a·c^x`; returns `(c, r²)` of the semi-log regression.
/// All `y` must be strictly positive.
pub fn exponential_base(points: &[(f64, f64)]) -> (f64, f64) {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(y > 0.0, "exponential fit needs positive y");
            (x, y.ln())
        })
        .collect();
    let (slope, _, r2) = linear_fit(&logs);
    (slope.exp(), r2)
}

/// Successive growth ratios `y[i+1] / y[i]` — the raw signal behind
/// "exponential in k" (ratios roughly constant and > 1) versus
/// "polynomial in n" (ratios decaying toward 1).
pub fn growth_ratios(ys: &[f64]) -> Vec<f64> {
    ys.windows(2).map(|w| w[1] / w[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let (m, b, r2) = linear_fit(&pts);
        assert!((m - 3.0).abs() < 1e-10);
        assert!((b - 2.0).abs() < 1e-10);
        assert!((r2 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| (i as f64, 5.0 * (i as f64).powf(2.5)))
            .collect();
        let (b, r2) = power_law_exponent(&pts);
        assert!((b - 2.5).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    fn exponential_recovers_base() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 0.5 * 3.0f64.powi(i))).collect();
        let (c, r2) = exponential_base(&pts);
        assert!((c - 3.0).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    fn growth_ratios_shape() {
        let r = growth_ratios(&[1.0, 2.0, 8.0]);
        assert_eq!(r, vec![2.0, 4.0]);
        assert!(growth_ratios(&[1.0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_rejected() {
        linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn vertical_data_rejected() {
        linear_fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
