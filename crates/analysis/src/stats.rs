//! Streaming and batch statistics.
//!
//! [`RunningStats`] is a Welford accumulator (numerically stable one-pass
//! mean/variance); [`Summary`] adds order statistics computed from a
//! sample vector. Experiments report `Summary` rows so the tables carry
//! dispersion alongside the paper's mean.

/// One-pass mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (NaN-free by construction; +inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary of a sample: mean, dispersion, and order statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample of `u64` observations (e.g. interaction counts).
    ///
    /// # Panics
    /// If the sample is empty.
    pub fn of_u64(samples: &[u64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of_f64(&as_f64)
    }

    /// Summarise a sample of `f64` observations.
    ///
    /// # Panics
    /// If the sample is empty.
    pub fn of_f64(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarise an empty sample");
        let mut rs = RunningStats::new();
        for &x in samples {
            rs.push(x);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            count: samples.len(),
            mean: rs.mean(),
            std_dev: rs.std_dev(),
            sem: rs.sem(),
            min: rs.min(),
            median: percentile_sorted(&sorted, 50.0),
            max: rs.max(),
        }
    }

    /// 95% confidence half-width for the mean (normal approximation,
    /// adequate at the paper's 100 trials per point).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.sem
    }
}

/// Percentile (0–100) of a **sorted** sample, with linear interpolation
/// between adjacent order statistics.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
        assert_eq!(rs.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..33] {
            a.push(x);
        }
        for &x in &data[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), a.mean());
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of_u64(&[1, 2, 3, 4, 100]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
        assert_eq!(percentile_sorted(&[7.0], 30.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        Summary::of_u64(&[]);
    }
}
