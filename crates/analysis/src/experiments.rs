//! Pre-wired experiment cells for the paper's protocol.
//!
//! Each figure in §5 is a sweep over `(n, k)` cells; a *cell* is one batch
//! of trials at fixed parameters. These helpers wire the k-partition
//! protocol, its stable signature, a generous interaction budget, and
//! deterministic per-cell seed derivation together, so figure binaries
//! only loop over their parameter grids.

use crate::grouping::{grouping_breakdown, GroupingBreakdown};
use crate::runner::{run_trials, run_trials_watching, TrialBatch, TrialConfig};
use crate::stats::Summary;
use pp_engine::seeds;
use pp_protocols::kpartition::UniformKPartition;

/// Result of one `(n, k)` cell.
#[derive(Clone, Debug)]
pub struct KPartitionCell {
    /// Number of groups.
    pub k: usize,
    /// Population size.
    pub n: u64,
    /// Trial outcomes.
    pub batch: TrialBatch,
}

impl KPartitionCell {
    /// Summary of interactions-to-stability across completed trials.
    pub fn summary(&self) -> Summary {
        self.batch.summary()
    }
}

/// Run one cell: `trials` executions of the uniform k-partition protocol
/// with `n` agents, stopping at the Lemma 4–6 stable signature.
///
/// The cell's master seed is derived from `(master_seed, k, n)`, so whole
/// sweeps are reproducible from a single recorded seed and cells are
/// independent of sweep order.
pub fn kpartition_cell(k: usize, n: u64, trials: usize, master_seed: u64) -> KPartitionCell {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let cfg = TrialConfig {
        trials,
        master_seed: seeds::derive_labelled(master_seed, k as u64, n),
        max_interactions: kp.interaction_budget(n),
    };
    let batch = run_trials(&proto, n, &kp.stable_signature(n), cfg);
    KPartitionCell { k, n, batch }
}

/// Result of one instrumented `(n, k)` cell (Figure 4).
#[derive(Clone, Debug)]
pub struct KPartitionGroupingCell {
    /// Number of groups.
    pub k: usize,
    /// Population size.
    pub n: u64,
    /// The `NI'_i` decomposition.
    pub breakdown: GroupingBreakdown,
}

/// Run one instrumented cell: as [`kpartition_cell`], additionally
/// recording when each grouping completes (each increment of `#g_k`) and
/// aggregating the `NI'_i` decomposition of Figure 4.
pub fn kpartition_grouping_cell(
    k: usize,
    n: u64,
    trials: usize,
    master_seed: u64,
) -> KPartitionGroupingCell {
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let cfg = TrialConfig {
        trials,
        master_seed: seeds::derive_labelled(master_seed, k as u64, n),
        max_interactions: kp.interaction_budget(n),
    };
    let watched = run_trials_watching(&proto, n, &kp.stable_signature(n), kp.g(k), cfg);
    KPartitionGroupingCell {
        k,
        n,
        breakdown: grouping_breakdown(&watched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runs_and_summarises() {
        let cell = kpartition_cell(3, 12, 10, 42);
        assert_eq!(cell.batch.censored, 0);
        assert_eq!(cell.batch.interactions.len(), 10);
        let s = cell.summary();
        assert!(s.mean > 0.0);
        assert!(s.min >= 11.0); // needs at least n - 1 = 11 state changes
    }

    #[test]
    fn cell_reproducible_and_seed_sensitive() {
        let a = kpartition_cell(3, 9, 6, 1);
        let b = kpartition_cell(3, 9, 6, 1);
        let c = kpartition_cell(3, 9, 6, 2);
        assert_eq!(a.batch.interactions, b.batch.interactions);
        assert_ne!(a.batch.interactions, c.batch.interactions);
    }

    #[test]
    fn grouping_cell_matches_expected_grouping_count() {
        // n = 13, k = 4: ⌊13/4⌋ = 3 groupings, remainder 1 agent tail.
        let cell = kpartition_grouping_cell(4, 13, 8, 7);
        assert_eq!(cell.breakdown.increments.len(), 3);
        assert_eq!(cell.breakdown.trials_used, 8);
        // Mean total from the stack equals a direct cell's mean total in
        // expectation; here just check positivity and monotone stacking.
        assert!(cell.breakdown.mean_total() > 0.0);
    }

    #[test]
    fn grouping_increments_increase_on_average() {
        // The paper: NI'_1 < NI'_2 < … (later groupings are harder as
        // free agents thin out). Check on a moderate cell with generous
        // trials to keep flakiness negligible.
        let cell = kpartition_grouping_cell(3, 24, 30, 11);
        let means: Vec<f64> = cell.breakdown.increments.iter().map(|s| s.mean).collect();
        assert_eq!(means.len(), 8);
        assert!(
            means.first().unwrap() * 2.0 < *means.last().unwrap(),
            "final grouping should dominate: {means:?}"
        );
    }
}
