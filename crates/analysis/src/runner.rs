//! Parallel trial fan-out.
//!
//! [`run_trials`] reproduces the paper's methodology: `trials` independent
//! executions of a protocol from its initial configuration under the
//! uniform random scheduler, each stopping at the supplied stability
//! criterion, returning the per-trial interaction counts. Trials are
//! mapped over a rayon thread pool; determinism is preserved because trial
//! `i`'s RNG seed is `seeds::derive(master_seed, i)` regardless of which
//! thread runs it.

use pp_engine::population::CountPopulation;
use pp_engine::protocol::CompiledProtocol;
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::seeds;
use pp_engine::simulator::{RunError, Simulator};
use pp_engine::stability::StabilityCriterion;
use rayon::prelude::*;

/// Configuration of a trial batch.
#[derive(Clone, Copy, Debug)]
pub struct TrialConfig {
    /// Number of independent executions (the paper uses 100).
    pub trials: usize,
    /// Master seed; trial `i` runs with `derive(master_seed, i)`.
    pub master_seed: u64,
    /// Per-trial interaction budget; runs exceeding it are reported as
    /// censored rather than aborting the batch.
    pub max_interactions: u64,
}

impl TrialConfig {
    /// The paper's default: 100 trials.
    pub fn paper_default(master_seed: u64, max_interactions: u64) -> Self {
        TrialConfig {
            trials: 100,
            master_seed,
            max_interactions,
        }
    }
}

/// Outcome of a trial batch.
#[derive(Clone, Debug)]
pub struct TrialBatch {
    /// Interactions-to-stability of every *completed* trial, in trial
    /// order (censored trials omitted).
    pub interactions: Vec<u64>,
    /// Number of trials that hit the interaction budget.
    pub censored: usize,
}

impl TrialBatch {
    /// Mean interactions over completed trials (the paper's reported
    /// statistic).
    ///
    /// # Panics
    /// If every trial was censored.
    pub fn mean(&self) -> f64 {
        assert!(
            !self.interactions.is_empty(),
            "all trials censored — raise max_interactions"
        );
        self.interactions.iter().sum::<u64>() as f64 / self.interactions.len() as f64
    }

    /// Full summary statistics over completed trials.
    pub fn summary(&self) -> crate::stats::Summary {
        crate::stats::Summary::of_u64(&self.interactions)
    }
}

/// Which simulation kernel a trial runs on. Participates in result
/// identity wherever trials are cached (`pp-sweep` records it in the cell
/// key): the kernels agree in distribution but consume randomness
/// differently, so a given seed produces different — equally valid —
/// trajectories under each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// The naive one-interaction-per-step loop ([`Simulator::run`]).
    Naive,
    /// The leap kernel ([`Simulator::run_leap`]): identity interactions
    /// are skipped in closed form.
    Leap,
    /// The tau-leap batch kernel ([`Simulator::run_batch`]): whole
    /// batches of rule firings per step, bounded-error in the bulk and
    /// exact near convergence (see `pp_engine::batch` for the error
    /// model). [`run_trials`] advances batch trials through the
    /// struct-of-arrays fleet runner ([`pp_engine::fleet`]), which is
    /// bit-identical per seed to the scalar entry point used by
    /// `pp-sweep`.
    Batch,
}

impl Kernel {
    /// Resolve the `PP_KERNEL` environment knob
    /// ([`crate::config::kernel`]) to a concrete kernel; `auto` means
    /// leap, which is exact for every criterion and for the observers the
    /// batch runners use.
    pub fn from_env() -> Kernel {
        match crate::config::kernel() {
            crate::config::KernelKnob::Naive => Kernel::Naive,
            crate::config::KernelKnob::Batch => Kernel::Batch,
            crate::config::KernelKnob::Leap | crate::config::KernelKnob::Auto => Kernel::Leap,
        }
    }
}

/// Run one trial with an already-derived `seed`, returning the
/// interactions to stability or `None` if the run hit `max_interactions`
/// (censored). This is the unit of work both the batch runners below and
/// `pp-sweep`'s journaled executor share: trial `i` of a batch is exactly
/// `run_trial(.., seeds::derive(master_seed, i), ..)`, so a resumed sweep
/// reproduces a fresh one bit for bit (per kernel — the kernel is part of
/// a sweep cell's identity).
///
/// The kernel comes from the `PP_KERNEL` knob; see [`run_trial_kernel`]
/// for an explicit choice.
///
/// # Panics
/// On any simulator error other than the interaction budget.
pub fn run_trial<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    seed: u64,
    max_interactions: u64,
) -> Option<u64>
where
    C: StabilityCriterion,
{
    run_trial_kernel(
        proto,
        n,
        criterion,
        seed,
        max_interactions,
        Kernel::from_env(),
    )
}

/// [`run_trial`] with an explicit kernel choice.
///
/// # Panics
/// On any simulator error other than the interaction budget.
pub fn run_trial_kernel<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    seed: u64,
    max_interactions: u64,
    kernel: Kernel,
) -> Option<u64>
where
    C: StabilityCriterion,
{
    let mut pop = CountPopulation::new(proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    // Telemetry rides along as an observer: it never touches scheduling
    // or RNG state, so trajectories — and the sweep cache's content
    // hashes built on them — are bit-identical to an unobserved run.
    let mut tel = pp_engine::metrics::TelemetryObserver::new();
    let sim = Simulator::new(proto);
    let res = match kernel {
        Kernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
        Kernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
        Kernel::Batch => {
            sim.run_batch_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
    };
    match res {
        Ok(r) => Some(r.interactions),
        Err(RunError::InteractionLimit { .. }) => {
            tel.mark_censored();
            None
        }
        Err(e) => panic!("trial failed: {e}"),
    }
}

/// Run `cfg.trials` independent executions of `proto` with `n` agents
/// (all starting in the initial state) and the given stability criterion,
/// in parallel. See module docs for the determinism guarantee.
pub fn run_trials<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    cfg: TrialConfig,
) -> TrialBatch
where
    C: StabilityCriterion + Sync,
{
    let kernel = Kernel::from_env();
    if kernel == Kernel::Batch {
        return run_trials_batch_fleet(proto, n, criterion, cfg);
    }
    let results: Vec<Option<u64>> = (0..cfg.trials as u64)
        .into_par_iter()
        .map(|i| {
            run_trial_kernel(
                proto,
                n,
                criterion,
                seeds::derive(cfg.master_seed, i),
                cfg.max_interactions,
                kernel,
            )
        })
        .collect();
    let mut interactions = Vec::with_capacity(results.len());
    let mut censored = 0;
    for r in results {
        match r {
            Some(x) => interactions.push(x),
            None => censored += 1,
        }
    }
    TrialBatch {
        interactions,
        censored,
    }
}

/// Trials per struct-of-arrays fleet: small enough that a fleet's counts
/// arena stays cache-resident, large enough to amortise channel
/// compilation, and plural enough to let rayon spread fleets over cores.
const FLEET_CHUNK: usize = 64;

/// [`run_trials`] on the batch kernel: trials advance through
/// [`pp_engine::fleet::run_batch_fleet`] in chunks of [`FLEET_CHUNK`],
/// one fleet per rayon task. Seeds are the same `derive(master_seed, i)`
/// grid as every other path, and each fleet member's trajectory is
/// bit-identical to the scalar `run_batch` of its seed, so results are
/// interchangeable with the journaled per-trial path `pp-sweep` uses.
fn run_trials_batch_fleet<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    cfg: TrialConfig,
) -> TrialBatch
where
    C: StabilityCriterion + Sync,
{
    let mut initial = vec![0u64; proto.num_states()];
    initial[proto.initial_state().index()] = n;
    let batch_cfg = pp_engine::BatchConfig::default();
    let all_seeds: Vec<u64> = (0..cfg.trials as u64)
        .map(|i| seeds::derive(cfg.master_seed, i))
        .collect();
    let chunks: Vec<Vec<u64>> = all_seeds.chunks(FLEET_CHUNK).map(|c| c.to_vec()).collect();
    let summaries: Vec<pp_engine::FleetSummary> = chunks
        .into_par_iter()
        .map(|chunk| {
            pp_engine::run_batch_fleet(
                proto,
                &initial,
                &chunk,
                criterion,
                cfg.max_interactions,
                &batch_cfg,
            )
        })
        .collect();
    // Flush the same counters a per-trial TelemetryObserver would have.
    let metrics = pp_engine::engine_metrics();
    let mut interactions = Vec::with_capacity(cfg.trials);
    let mut censored = 0usize;
    for s in &summaries {
        metrics.interactions.add(s.interactions);
        metrics.effective_interactions.add(s.effective_interactions);
        metrics.leap_batches.add(s.leap_batches);
        metrics.batch_fallbacks.add(s.batch_fallbacks);
        for r in &s.results {
            metrics.runs.inc();
            match r {
                Ok(res) => interactions.push(res.interactions),
                Err(RunError::InteractionLimit { .. }) => {
                    metrics.censored_runs.inc();
                    censored += 1;
                }
                Err(e) => panic!("trial failed: {e}"),
            }
        }
    }
    TrialBatch {
        interactions,
        censored,
    }
}

/// Like [`run_trials`] but additionally records, per trial, the
/// interaction number at which each increment of `watched_state`
/// occurred — the paper's Figure 4 instrumentation (watch `g_k`; its
/// `i`-th increment marks completion of the `i`-th grouping).
pub fn run_trials_watching<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    watched_state: pp_engine::protocol::StateId,
    cfg: TrialConfig,
) -> Vec<WatchedTrial>
where
    C: StabilityCriterion + Sync,
{
    let kernel = Kernel::from_env();
    (0..cfg.trials as u64)
        .into_par_iter()
        .map(|i| {
            run_trial_watching_kernel(
                proto,
                n,
                criterion,
                watched_state,
                seeds::derive(cfg.master_seed, i),
                cfg.max_interactions,
                kernel,
            )
        })
        .collect()
}

/// Single-trial form of [`run_trials_watching`] with an already-derived
/// `seed` (see [`run_trial`]); kernel from the `PP_KERNEL` knob.
pub fn run_trial_watching<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    watched_state: pp_engine::protocol::StateId,
    seed: u64,
    max_interactions: u64,
) -> WatchedTrial
where
    C: StabilityCriterion,
{
    run_trial_watching_kernel(
        proto,
        n,
        criterion,
        watched_state,
        seed,
        max_interactions,
        Kernel::from_env(),
    )
}

/// [`run_trial_watching`] with an explicit kernel. The
/// [`pp_engine::observer::GroupCompletionObserver`] is leap-safe: watched
/// counts cannot change during an identity run, so seeing only effective
/// interactions (with true cumulative step numbers) records the same
/// completion times the naive kernel would for the same trajectory.
pub fn run_trial_watching_kernel<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    watched_state: pp_engine::protocol::StateId,
    seed: u64,
    max_interactions: u64,
    kernel: Kernel,
) -> WatchedTrial
where
    C: StabilityCriterion,
{
    let mut pop = CountPopulation::new(proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let mut obs = pp_engine::observer::Chain(
        pp_engine::observer::GroupCompletionObserver::new(watched_state),
        pp_engine::metrics::TelemetryObserver::new(),
    );
    let sim = Simulator::new(proto);
    let res = match kernel {
        Kernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, criterion, max_interactions, &mut obs)
        }
        Kernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, criterion, max_interactions, &mut obs)
        }
        // Batch: completion times are recorded at leap granularity (a
        // completion inside a leap is attributed to the leap's last
        // interaction) — bounded by one leap horizon, documented on
        // `Observer::on_leap_batch`.
        Kernel::Batch => {
            sim.run_batch_observed(&mut pop, &mut sched, criterion, max_interactions, &mut obs)
        }
    };
    let pp_engine::observer::Chain(gc, mut tel) = obs;
    match res {
        Ok(r) => WatchedTrial {
            total: Some(r.interactions),
            completions: gc.into_completions(),
        },
        Err(RunError::InteractionLimit { .. }) => {
            tel.mark_censored();
            WatchedTrial {
                total: None,
                completions: gc.into_completions(),
            }
        }
        Err(e) => panic!("trial failed: {e}"),
    }
}

/// One instrumented trial: completion times of each watched-state
/// increment, plus the total if the run stabilised.
#[derive(Clone, Debug)]
pub struct WatchedTrial {
    /// Total interactions to stability; `None` if censored.
    pub total: Option<u64>,
    /// `completions[i]` = interaction at which the watched count first
    /// reached `i + 1`.
    pub completions: Vec<u64>,
}

/// One trial's full outcome: interaction count and the final
/// configuration (available even for censored runs, whose `interactions`
/// is `None`).
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// Interactions to stability; `None` if the budget was hit.
    pub interactions: Option<u64>,
    /// Final count vector.
    pub final_counts: Vec<u64>,
}

/// Like [`run_trials`] but returning each trial's final configuration as
/// well — used by baseline comparisons that measure *uniformity* (group
/// sizes) of the stable outcome, not just its cost.
pub fn run_trials_full<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    cfg: TrialConfig,
) -> Vec<TrialOutcome>
where
    C: StabilityCriterion + Sync,
{
    let kernel = Kernel::from_env();
    (0..cfg.trials as u64)
        .into_par_iter()
        .map(|i| {
            run_trial_full_kernel(
                proto,
                n,
                criterion,
                seeds::derive(cfg.master_seed, i),
                cfg.max_interactions,
                kernel,
            )
        })
        .collect()
}

/// Single-trial form of [`run_trials_full`] with an already-derived
/// `seed` (see [`run_trial`]); kernel from the `PP_KERNEL` knob.
pub fn run_trial_full<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    seed: u64,
    max_interactions: u64,
) -> TrialOutcome
where
    C: StabilityCriterion,
{
    run_trial_full_kernel(
        proto,
        n,
        criterion,
        seed,
        max_interactions,
        Kernel::from_env(),
    )
}

/// [`run_trial_full`] with an explicit kernel.
pub fn run_trial_full_kernel<C>(
    proto: &CompiledProtocol,
    n: u64,
    criterion: &C,
    seed: u64,
    max_interactions: u64,
    kernel: Kernel,
) -> TrialOutcome
where
    C: StabilityCriterion,
{
    let mut pop = CountPopulation::new(proto, n);
    let mut sched = UniformRandomScheduler::from_seed(seed);
    let mut tel = pp_engine::metrics::TelemetryObserver::new();
    let sim = Simulator::new(proto);
    let res = match kernel {
        Kernel::Naive => {
            sim.run_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
        Kernel::Leap => {
            sim.run_leap_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
        Kernel::Batch => {
            sim.run_batch_observed(&mut pop, &mut sched, criterion, max_interactions, &mut tel)
        }
    };
    use pp_engine::population::Population;
    TrialOutcome {
        interactions: match res {
            Ok(r) => Some(r.interactions),
            Err(RunError::InteractionLimit { .. }) => {
                tel.mark_censored();
                None
            }
            Err(e) => panic!("trial failed: {e}"),
        },
        final_counts: pop.counts().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;
    use pp_engine::stability::Silent;

    fn two_phase() -> (CompiledProtocol, pp_engine::protocol::StateId) {
        // (a, a) -> (b, b): pairs settle; odd agent remains. Watched: b.
        let mut spec = ProtocolSpec::new("pairing");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        (spec.compile().unwrap(), b)
    }

    #[test]
    fn trials_are_deterministic_in_master_seed() {
        let (p, _) = two_phase();
        let cfg = TrialConfig {
            trials: 16,
            master_seed: 99,
            max_interactions: 1_000_000,
        };
        let a = run_trials(&p, 11, &Silent, cfg);
        let b = run_trials(&p, 11, &Silent, cfg);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.censored, 0);
        assert_eq!(a.interactions.len(), 16);
        // Different master seed gives a different batch.
        let c = run_trials(
            &p,
            11,
            &Silent,
            TrialConfig {
                master_seed: 100,
                ..cfg
            },
        );
        assert_ne!(a.interactions, c.interactions);
    }

    #[test]
    fn censoring_counts_budget_hits() {
        let (p, _) = two_phase();
        let cfg = TrialConfig {
            trials: 8,
            master_seed: 1,
            max_interactions: 1, // absurdly tight: n=11 needs ≥ 5 pairings
        };
        let batch = run_trials(&p, 11, &Silent, cfg);
        assert_eq!(batch.censored, 8);
        assert!(batch.interactions.is_empty());
    }

    #[test]
    fn watching_records_monotone_completions() {
        let (p, b) = two_phase();
        let cfg = TrialConfig {
            trials: 4,
            master_seed: 5,
            max_interactions: 1_000_000,
        };
        let trials = run_trials_watching(&p, 10, &Silent, b, cfg);
        for t in &trials {
            let total = t.total.expect("not censored");
            // 10 agents -> 5 pairings -> watched count reaches 10.
            assert_eq!(t.completions.len(), 10);
            assert!(t.completions.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(*t.completions.last().unwrap(), total);
        }
    }

    #[test]
    fn fleet_fast_path_matches_per_trial_batch_kernel() {
        let (p, _) = two_phase();
        let cfg = TrialConfig {
            trials: 130, // > 2 × FLEET_CHUNK so chunk boundaries are exercised
            master_seed: 77,
            max_interactions: 1_000_000,
        };
        let fleet = run_trials_batch_fleet(&p, 301, &Silent, cfg);
        let scalar: Vec<u64> = (0..cfg.trials as u64)
            .map(|i| {
                run_trial_kernel(
                    &p,
                    301,
                    &Silent,
                    seeds::derive(cfg.master_seed, i),
                    cfg.max_interactions,
                    Kernel::Batch,
                )
                .expect("uncensored")
            })
            .collect();
        assert_eq!(fleet.interactions, scalar);
        assert_eq!(fleet.censored, 0);
    }

    #[test]
    fn fleet_fast_path_counts_censoring() {
        let (p, _) = two_phase();
        let cfg = TrialConfig {
            trials: 8,
            master_seed: 1,
            max_interactions: 1,
        };
        let batch = run_trials_batch_fleet(&p, 11, &Silent, cfg);
        assert_eq!(batch.censored, 8);
        assert!(batch.interactions.is_empty());
    }

    #[test]
    fn batch_mean_and_summary_agree() {
        let batch = TrialBatch {
            interactions: vec![10, 20, 30],
            censored: 0,
        };
        assert!((batch.mean() - 20.0).abs() < 1e-12);
        assert!((batch.summary().mean - 20.0).abs() < 1e-12);
    }
}
