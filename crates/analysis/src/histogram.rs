//! Histograms and ASCII rendering.
//!
//! The paper reports only means; the stabilisation-time distribution is
//! heavily right-skewed (a run that spawns many colliding chains pays for
//! every unwind), so the harness also reports histograms. Fixed-width
//! binning over the observed range, plus a terminal renderer used by the
//! `distributions` binary.

use std::fmt::Write as _;

/// A fixed-bin histogram over `f64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    /// Samples outside `[lo, hi]` (possible when bounds are supplied).
    outliers: u64,
}

impl Histogram {
    /// Histogram with `num_bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    /// If `num_bins = 0` or `lo ≥ hi`.
    pub fn with_bounds(lo: f64, hi: f64, num_bins: usize) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        assert!(lo < hi, "empty range");
        Histogram {
            lo,
            hi,
            bins: vec![0; num_bins],
            count: 0,
            outliers: 0,
        }
    }

    /// Histogram fitted to the sample range (a closed range widened by a
    /// hair so the maximum lands in the last bin).
    ///
    /// # Panics
    /// If the sample is empty.
    pub fn fit(samples: &[f64], num_bins: usize) -> Self {
        assert!(!samples.is_empty(), "cannot fit an empty sample");
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if lo == hi {
            lo + 1.0
        } else {
            hi * (1.0 + 1e-12) + 1e-12
        };
        let mut h = Histogram::with_bounds(lo, hi, num_bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / w) as usize;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// In-range sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that fell outside the bounds.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// The `[lo, hi)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Render as ASCII rows `lo..hi | ####### count`.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            let _ = writeln!(out, "{lo:>12.0} … {hi:>12.0} |{bar:<width$}| {c}");
        }
        if self.outliers > 0 {
            let _ = writeln!(out, "({} samples out of range)", self.outliers);
        }
        out
    }
}

/// One-line sparkline (unicode block elements), handy in tables.
pub fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return BLOCKS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| BLOCKS[((v * 7) / max) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_covers_all_samples() {
        let h = Histogram::fit(&[1.0, 2.0, 3.0, 4.0, 100.0], 5);
        assert_eq!(h.count(), 5);
        assert_eq!(h.outliers(), 0);
        assert_eq!(h.bins().iter().sum::<u64>(), 5);
        // The maximum lands in the last bin.
        assert!(h.bins()[4] >= 1);
    }

    #[test]
    fn constant_sample_fits() {
        let h = Histogram::fit(&[7.0, 7.0, 7.0], 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bins()[0], 3);
    }

    #[test]
    fn bounds_and_outliers() {
        let mut h = Histogram::with_bounds(0.0, 10.0, 2);
        h.add(1.0);
        h.add(6.0);
        h.add(42.0);
        h.add(-3.0);
        assert_eq!(h.bins(), &[1, 1]);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.bin_range(0), (0.0, 5.0));
        assert_eq!(h.bin_range(1), (5.0, 10.0));
    }

    #[test]
    fn ascii_render_shape() {
        let h = Histogram::fit(&[1.0, 1.5, 9.0], 2);
        let s = h.to_ascii(10);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("##"));
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 1, 2, 4, 8]);
        assert_eq!(s.chars().count(), 5);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
        assert_eq!(sparkline(&[0, 0]), "▁▁");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn fit_empty_panics() {
        Histogram::fit(&[], 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::with_bounds(0.0, 1.0, 0);
    }
}
