//! Figure 4's decomposition: interactions per *i-th grouping*.
//!
//! The paper defines `NI_i` as the number of interactions until the `i`-th
//! complete set `{g_1, …, g_k}` exists (equivalently, until `#g_k`
//! first reaches `i`; `NI_0 = 0`), and studies the *increments*
//! `NI'_i = NI_i − NI_{i−1}` — the cost of each successive grouping. The
//! final `n mod k` leftover agents settle after the last grouping; that
//! tail (`total − NI_{⌊n/k⌋}`) is the "last part" the paper's Figure 4
//! plots on top of each bar.

use crate::runner::WatchedTrial;
use crate::stats::Summary;

/// Aggregated grouping decomposition across trials.
#[derive(Clone, Debug)]
pub struct GroupingBreakdown {
    /// `increments[i]` summarises `NI'_{i+1}` across trials.
    pub increments: Vec<Summary>,
    /// Summary of the tail (interactions after the final grouping, i.e.
    /// settling the `n mod k` leftover agents). All-zero when `k | n`
    /// *and* stability coincides with the last grouping.
    pub tail: Summary,
    /// Number of trials aggregated (censored trials are skipped).
    pub trials_used: usize,
}

/// Aggregate the per-trial completion logs produced by
/// [`crate::runner::run_trials_watching`] into mean `NI'_i` increments.
///
/// All non-censored trials must have completed the same number of
/// groupings (they do for the k-partition protocol, where the count is
/// `⌊n/k⌋` by Lemma 4).
///
/// # Panics
/// If no trial completed, or completion counts disagree across trials.
pub fn grouping_breakdown(trials: &[WatchedTrial]) -> GroupingBreakdown {
    let complete: Vec<&WatchedTrial> = trials.iter().filter(|t| t.total.is_some()).collect();
    assert!(!complete.is_empty(), "all trials censored");
    let groupings = complete[0].completions.len();
    for t in &complete {
        assert_eq!(
            t.completions.len(),
            groupings,
            "trials disagree on the number of groupings"
        );
    }
    let mut increments = Vec::with_capacity(groupings);
    for i in 0..groupings {
        let samples: Vec<u64> = complete
            .iter()
            .map(|t| {
                let prev = if i == 0 { 0 } else { t.completions[i - 1] };
                t.completions[i] - prev
            })
            .collect();
        increments.push(Summary::of_u64(&samples));
    }
    let tails: Vec<u64> = complete
        .iter()
        .map(|t| {
            let last = t.completions.last().copied().unwrap_or(0);
            t.total.expect("filtered to complete") - last
        })
        .collect();
    GroupingBreakdown {
        increments,
        tail: Summary::of_u64(&tails),
        trials_used: complete.len(),
    }
}

impl GroupingBreakdown {
    /// Mean `NI'_i` values in order, ending with the mean tail — one bar
    /// segment per entry, bottom to top, exactly as the paper stacks
    /// Figure 4.
    pub fn mean_stack(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.increments.iter().map(|s| s.mean).collect();
        v.push(self.tail.mean);
        v
    }

    /// Sum of the mean stack — equals the mean total interaction count.
    pub fn mean_total(&self) -> f64 {
        self.mean_stack().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(completions: Vec<u64>, total: u64) -> WatchedTrial {
        WatchedTrial {
            total: Some(total),
            completions,
        }
    }

    #[test]
    fn increments_and_tail() {
        let trials = vec![trial(vec![10, 30, 60], 70), trial(vec![20, 40, 80], 100)];
        let b = grouping_breakdown(&trials);
        assert_eq!(b.trials_used, 2);
        assert_eq!(b.increments.len(), 3);
        assert!((b.increments[0].mean - 15.0).abs() < 1e-12); // (10+20)/2
        assert!((b.increments[1].mean - 20.0).abs() < 1e-12); // (20+20)/2
        assert!((b.increments[2].mean - 35.0).abs() < 1e-12); // (30+40)/2
        assert!((b.tail.mean - 15.0).abs() < 1e-12); // (10+20)/2
        assert!((b.mean_total() - 85.0).abs() < 1e-12);
        assert_eq!(b.mean_stack().len(), 4);
    }

    #[test]
    fn censored_trials_are_skipped() {
        let trials = vec![
            trial(vec![10], 12),
            WatchedTrial {
                total: None,
                completions: vec![5],
            },
        ];
        let b = grouping_breakdown(&trials);
        assert_eq!(b.trials_used, 1);
        assert!((b.increments[0].mean - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "all trials censored")]
    fn all_censored_panics() {
        grouping_breakdown(&[WatchedTrial {
            total: None,
            completions: vec![],
        }]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_grouping_counts_panic() {
        grouping_breakdown(&[trial(vec![1], 2), trial(vec![1, 2], 3)]);
    }
}
