//! Table and CSV emission.
//!
//! Experiment binaries print markdown tables (for EXPERIMENTS.md) and
//! write CSV files (for external plotting). Both are hand-rolled — the
//! data is small and flat, so a serialization framework would be pure
//! overhead.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width does not match header count"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, c) in widths.iter().zip(cells) {
                let _ = write!(out, " {c:<w$} |");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV text (RFC-4180 quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// The canonical summary-statistics column block emitted by
    /// [`Table::push_summary_row`]; splice into a header list after the
    /// sweep-specific key columns.
    pub const SUMMARY_HEADERS: [&'static str; 8] = [
        "trials", "mean", "std", "sem", "min", "median", "max", "censored",
    ];

    /// Append a row of `prefix` key cells, the canonical
    /// [`Summary`](crate::stats::Summary) block (count, mean, std, sem,
    /// min, median, max, censored), and any `suffix` cells — the shape
    /// every per-cell experiment table shares. The table's headers must
    /// have been built with [`Table::SUMMARY_HEADERS`] in the matching
    /// position, which `row`'s width check enforces.
    pub fn push_summary_row(
        &mut self,
        prefix: Vec<String>,
        s: &crate::stats::Summary,
        censored: usize,
        suffix: Vec<String>,
    ) -> &mut Self {
        let mut cells = prefix;
        cells.extend([
            s.count.to_string(),
            fmt_f64(s.mean),
            fmt_f64(s.std_dev),
            fmt_f64(s.sem),
            fmt_f64(s.min),
            fmt_f64(s.median),
            fmt_f64(s.max),
            censored.to_string(),
        ]);
        cells.extend(suffix);
        self.row(cells)
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(self.to_csv().as_bytes())
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Format a float with a sensible number of digits for tables: integers
/// print bare, large values with one decimal, small with three.
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new(vec!["n", "mean"]);
        t.row(vec!["12", "345.6"]);
        t.row(vec!["120", "7.0"]);
        let md = t.to_markdown();
        assert!(md.contains("| n   | mean  |"));
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("pp_analysis_test");
        let path = dir.join("t.csv");
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["1"]);
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn push_summary_row_matches_canonical_headers() {
        let mut headers: Vec<String> = vec!["k".into(), "n".into()];
        headers.extend(Table::SUMMARY_HEADERS.iter().map(|h| h.to_string()));
        headers.push("extra".into());
        let mut t = Table::new(headers);
        let s = crate::stats::Summary::of_u64(&[10, 20, 30]);
        t.push_summary_row(vec!["4".into(), "96".into()], &s, 2, vec!["tail".into()]);
        let csv = t.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "4,96,3,20,10,5.774,10,20,30,2,tail");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(1234.56), "1234.6");
        assert_eq!(fmt_f64(0.12345), "0.123");
    }
}
