//! # pp-analysis — experiment harness and statistics
//!
//! Everything between "a protocol and a simulator" and "the rows of the
//! paper's figures": deterministic parallel trial fan-out ([`runner`]),
//! streaming statistics ([`stats`]), the Figure 4 grouping-time
//! decomposition ([`grouping`]), growth-law fitting for the paper's
//! scaling claims ([`fit`]), and CSV/markdown emission ([`table`]).
//!
//! The paper's methodology (§5): for each data point, run 100 simulations
//! under the uniform random scheduler and report the mean number of
//! interactions to reach a stable configuration. [`runner::run_trials`]
//! reproduces exactly that, fanned out over threads with rayon — each
//! trial's RNG is derived from `(master_seed, trial_index)` so results are
//! independent of thread interleaving and bit-reproducible.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod fit;
pub mod grouping;
pub mod histogram;
pub mod runner;
pub mod stats;
pub mod table;
