//! Exact expected stabilisation times.
//!
//! Under the uniform random scheduler, an execution is a Markov chain on
//! the configuration space: from configuration `c` with `n` agents, the
//! ordered state pair `(p, q)` is drawn with probability
//! `c_p · (c_q − [p = q]) / (n(n − 1))`. The paper *simulates* this chain
//! and reports sample means; for small instances we can instead solve the
//! first-step equations exactly:
//!
//! ```text
//! T(c) = 0                                   if c is stable
//! T(c) = 1 + Σ_{c'} P(c → c') · T(c')        otherwise
//! ```
//!
//! where identity interactions contribute a self-loop `P(c → c)`. The
//! solver runs Gauss–Seidel sweeps with the self-loop factored out
//! analytically (`T(c) = (1 + Σ_{c'≠c} P·T(c')) / (1 − P_self)`), which
//! converges geometrically for absorbing chains.
//!
//! This gives an *exact* (up to solver tolerance) reference value for the
//! paper's §5 metric, against which the simulation harness is
//! cross-validated in `exact_vs_sim` and the test suite.

use crate::ConfigGraph;
use pp_engine::protocol::StateId;
use std::collections::HashMap;

/// Result of an exact hitting-time computation.
#[derive(Clone, Debug)]
pub struct HittingTime {
    /// Expected interactions from the all-`initial` configuration to the
    /// first stable configuration.
    pub expected_from_initial: f64,
    /// Expected interactions from every configuration (indexed by
    /// configuration id; 0 for stable configurations).
    pub expected: Vec<f64>,
    /// Gauss–Seidel sweeps performed.
    pub sweeps: usize,
    /// Final maximum relative update (convergence residual).
    pub residual: f64,
}

/// First two moments of the hitting time, from the initial configuration.
///
/// The second moment satisfies its own first-step equations
/// `M₂(c) = Σ P(c→c')·E[(1 + T_{c'})²] = 1 + 2·Σ P·T(c') + Σ P·M₂(c')`,
/// solved by the same Gauss–Seidel machinery once `T` is known. The
/// standard deviation lets `exact_vs_sim` check the simulator's *spread*,
/// not just its mean.
#[derive(Clone, Debug)]
pub struct HittingMoments {
    /// `E[T]` from the initial configuration.
    pub mean: f64,
    /// Standard deviation of T from the initial configuration.
    pub std_dev: f64,
}

/// Errors from the hitting-time solver.
#[derive(Debug, Clone, PartialEq)]
pub enum HittingError {
    /// No configuration satisfies the stable predicate: the expectation
    /// is infinite.
    NoStableConfigs,
    /// Some configuration cannot reach the stable set (the expectation
    /// from it — and possibly from the initial configuration — is
    /// infinite). Carries one such configuration id.
    StableSetUnreachable(u32),
    /// The sweep budget was exhausted before reaching the tolerance.
    NotConverged {
        /// Residual at the last sweep.
        residual: f64,
    },
}

impl std::fmt::Display for HittingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HittingError::NoStableConfigs => write!(f, "no stable configurations reachable"),
            HittingError::StableSetUnreachable(id) => {
                write!(f, "configuration {id} cannot reach the stable set")
            }
            HittingError::NotConverged { residual } => {
                write!(f, "solver did not converge (residual {residual:e})")
            }
        }
    }
}

impl std::error::Error for HittingError {}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Stop when the maximum relative update falls below this.
    pub tolerance: f64,
    /// Maximum Gauss–Seidel sweeps.
    pub max_sweeps: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-10,
            max_sweeps: 200_000,
        }
    }
}

/// The probabilistic structure of the chain: stability mask, self-loop
/// mass, and weighted out-edges per configuration.
struct ChainStructure {
    is_stable: Vec<bool>,
    self_loop: Vec<f64>,
    edges: Vec<Vec<(u32, f64)>>,
}

/// Compute the expected number of interactions from the graph's root
/// configuration (index 0, the all-`initial` one) until the first
/// configuration satisfying `stable`, under the uniform random
/// scheduler.
pub fn expected_interactions<F>(
    graph: &ConfigGraph<'_>,
    stable: F,
    opts: SolverOptions,
) -> Result<HittingTime, HittingError>
where
    F: FnMut(&[u32]) -> bool,
{
    let chain = build_chain(graph, stable)?;
    solve_first_moment(&chain, opts)
}

/// Compute the exact mean *and standard deviation* of the hitting time
/// from the initial configuration.
pub fn hitting_moments<F>(
    graph: &ConfigGraph<'_>,
    stable: F,
    opts: SolverOptions,
) -> Result<HittingMoments, HittingError>
where
    F: FnMut(&[u32]) -> bool,
{
    let chain = build_chain(graph, stable)?;
    let first = solve_first_moment(&chain, opts)?;
    // Second-moment sweep: M2(c) = (1 + 2·Σ P·T' + Σ_{c'≠c} P·M2(c')
    //                               + 2·P_self·T(c)) / (1 − P_self)
    // — derived by expanding E[(1 + T_next)²] with the self-loop term
    // moved to the left (T(c) appears because a self-loop re-enters c).
    let num = chain.is_stable.len();
    let t = &first.expected;
    let mut m2 = vec![0.0f64; num];
    let mut sweeps = 0;
    let mut residual;
    loop {
        sweeps += 1;
        residual = 0.0f64;
        for id in 0..num {
            if chain.is_stable[id] {
                continue;
            }
            let mut sum = 1.0;
            for &(nid, p) in &chain.edges[id] {
                sum += p * (2.0 * t[nid as usize] + m2[nid as usize]);
            }
            sum += chain.self_loop[id] * 2.0 * t[id];
            let new = sum / (1.0 - chain.self_loop[id]);
            let delta = (new - m2[id]).abs() / new.max(1.0);
            if delta > residual {
                residual = delta;
            }
            m2[id] = new;
        }
        if residual < opts.tolerance {
            break;
        }
        if sweeps >= opts.max_sweeps {
            return Err(HittingError::NotConverged { residual });
        }
    }
    let mean = first.expected_from_initial;
    let var = (m2[0] - mean * mean).max(0.0);
    Ok(HittingMoments {
        mean,
        std_dev: var.sqrt(),
    })
}

fn build_chain<F>(graph: &ConfigGraph<'_>, mut stable: F) -> Result<ChainStructure, HittingError>
where
    F: FnMut(&[u32]) -> bool,
{
    let proto = graph.protocol();
    let num = graph.num_configs();
    let n = graph.population_size();
    assert!(n >= 2, "hitting times need at least two agents");
    let denom = (n * (n - 1)) as f64;

    // Index configurations for successor lookup.
    let mut index: HashMap<&[u32], u32> = HashMap::with_capacity(num);
    for id in 0..num as u32 {
        index.insert(graph.config(id), id);
    }

    let is_stable: Vec<bool> = (0..num as u32).map(|id| stable(graph.config(id))).collect();
    if !is_stable.iter().any(|&s| s) {
        return Err(HittingError::NoStableConfigs);
    }

    // Build the probabilistic transition structure: for each non-stable
    // config, the self-loop mass and the out-edges with probabilities.
    // (The ConfigGraph's successor lists are deduplicated and unweighted,
    // so probabilities are re-derived from the counts.)
    let mut self_loop = vec![0.0f64; num];
    let mut edges: Vec<Vec<(u32, f64)>> = vec![Vec::new(); num];
    let mut scratch: Vec<u32> = Vec::new();
    for id in 0..num as u32 {
        if is_stable[id as usize] {
            continue;
        }
        let cfg = graph.config(id);
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let mut p_self = 0.0;
        for (pi, &cp) in cfg.iter().enumerate() {
            if cp == 0 {
                continue;
            }
            for (qi, &cq) in cfg.iter().enumerate() {
                let avail = if pi == qi { cq.saturating_sub(1) } else { cq };
                if avail == 0 {
                    continue;
                }
                let prob = (u64::from(cp) * u64::from(avail)) as f64 / denom;
                let (p, q) = (StateId(pi as u16), StateId(qi as u16));
                if proto.is_identity(p, q) {
                    p_self += prob;
                    continue;
                }
                let (p2, q2) = proto.delta(p, q);
                scratch.clear();
                scratch.extend_from_slice(cfg);
                scratch[p.index()] -= 1;
                scratch[q.index()] -= 1;
                scratch[p2.index()] += 1;
                scratch[q2.index()] += 1;
                let nid = *index
                    .get(scratch.as_slice())
                    .expect("successor must be in the reachable graph");
                if nid == id {
                    p_self += prob;
                } else {
                    *acc.entry(nid).or_insert(0.0) += prob;
                }
            }
        }
        self_loop[id as usize] = p_self;
        edges[id as usize] = acc.into_iter().collect();
        // A non-stable configuration with no outgoing probability mass to
        // other configurations and self-loop 1 can never leave itself.
        if edges[id as usize].is_empty() && p_self >= 1.0 - 1e-12 {
            return Err(HittingError::StableSetUnreachable(id));
        }
    }

    // Quick reachability check: every non-stable config must reach the
    // stable set (otherwise its expectation is infinite and Gauss–Seidel
    // would diverge silently). Backward BFS from the stable set over the
    // unweighted successor lists.
    {
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); num];
        for id in 0..num as u32 {
            for &s in graph.successors(id) {
                preds[s as usize].push(id);
            }
        }
        let mut can_reach = is_stable.clone();
        let mut stack: Vec<u32> = (0..num as u32)
            .filter(|&id| is_stable[id as usize])
            .collect();
        while let Some(v) = stack.pop() {
            for &p in &preds[v as usize] {
                if !can_reach[p as usize] {
                    can_reach[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        if let Some(bad) = (0..num as u32).find(|&id| !can_reach[id as usize]) {
            return Err(HittingError::StableSetUnreachable(bad));
        }
    }

    Ok(ChainStructure {
        is_stable,
        self_loop,
        edges,
    })
}

fn solve_first_moment(
    chain: &ChainStructure,
    opts: SolverOptions,
) -> Result<HittingTime, HittingError> {
    let num = chain.is_stable.len();
    let mut t = vec![0.0f64; num];
    let mut residual = f64::INFINITY;
    let mut sweeps = 0;
    while sweeps < opts.max_sweeps {
        sweeps += 1;
        residual = 0.0;
        for id in 0..num {
            if chain.is_stable[id] {
                continue;
            }
            let mut sum = 1.0;
            for &(nid, p) in &chain.edges[id] {
                sum += p * t[nid as usize];
            }
            let new = sum / (1.0 - chain.self_loop[id]);
            let delta = (new - t[id]).abs() / new.max(1.0);
            if delta > residual {
                residual = delta;
            }
            t[id] = new;
        }
        if residual < opts.tolerance {
            return Ok(HittingTime {
                expected_from_initial: t[0],
                expected: t,
                sweeps,
                residual,
            });
        }
    }
    Err(HittingError::NotConverged { residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    /// Two-agent pairing: (a, a) -> (b, b). From n agents in `a`, each
    /// interaction is an (a, a) meeting with probability 1 while ≥ 2 a's
    /// remain… actually every pair *is* (a, a) until fewer than two
    /// remain, so the hitting time to all-paired is exactly ⌊n/2⌋ when
    /// only (a, a) pairs are non-null — but (a, b) null interactions also
    /// consume steps. Compute the closed form for n = 3 and check.
    #[test]
    fn closed_form_three_agents() {
        let mut spec = ProtocolSpec::new("pairing");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore(&proto, 3, 100).unwrap();
        // Configurations: (3,0) -> (1,2) -> stuck at (1,2) since only one
        // `a` remains. Stable predicate: fewer than two a's.
        let ht = expected_interactions(&graph, |cfg| cfg[0] < 2, SolverOptions::default()).unwrap();
        // From (3,0): P(pick an (a,a) ordered pair) = 3·2/(3·2) = 1, so
        // exactly one interaction.
        assert!((ht.expected_from_initial - 1.0).abs() < 1e-9);
    }

    /// n = 4: from (4,0), the first interaction always pairs two agents
    /// -> (2,2). From (2,2): P((a,a)) = 2·1/12 = 1/6, other pairs null.
    /// E = 1 + 6 = 7.
    #[test]
    fn closed_form_four_agents() {
        let mut spec = ProtocolSpec::new("pairing");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore(&proto, 4, 100).unwrap();
        let ht = expected_interactions(&graph, |cfg| cfg[0] < 2, SolverOptions::default()).unwrap();
        assert!(
            (ht.expected_from_initial - 7.0).abs() < 1e-8,
            "got {}",
            ht.expected_from_initial
        );
    }

    /// Epidemic with one seed on n agents: classic coupon-like sum
    /// E = Σ_{i=1..n−1} n(n−1)/(2·i·(n−i)).
    #[test]
    fn epidemic_matches_closed_form() {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        let proto = spec.compile().unwrap();
        for n in [3u64, 5, 8] {
            let mut start = vec![0u32; 2];
            start[0] = n as u32 - 1;
            start[1] = 1;
            let graph = ConfigGraph::explore_from(&proto, start, 1000).unwrap();
            let ht =
                expected_interactions(&graph, |cfg| cfg[0] == 0, SolverOptions::default()).unwrap();
            let exact: f64 = (1..n)
                .map(|inf| (n * (n - 1)) as f64 / (2.0 * inf as f64 * (n - inf) as f64))
                .sum();
            assert!(
                (ht.expected_from_initial - exact).abs() < 1e-7,
                "n={n}: solver {} vs closed form {exact}",
                ht.expected_from_initial
            );
        }
    }

    /// Moments of a geometric tail: pairing on n = 4 is one deterministic
    /// step then Geometric(1/6), so T = 1 + G with E[G] = 6 and
    /// Std[G] = √(1 − p)/p = √30 ≈ 5.4772; the +1 shift leaves the
    /// standard deviation unchanged.
    #[test]
    fn moments_match_geometric_tail() {
        let mut spec = ProtocolSpec::new("pairing");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore(&proto, 4, 100).unwrap();
        let m = hitting_moments(&graph, |cfg| cfg[0] < 2, SolverOptions::default()).unwrap();
        assert!((m.mean - 7.0).abs() < 1e-7);
        let expected_std = (30.0f64).sqrt();
        assert!(
            (m.std_dev - expected_std).abs() < 1e-6,
            "std {} vs {}",
            m.std_dev,
            expected_std
        );
    }

    /// A deterministic chain has zero variance: single-path epidemic on
    /// n = 2 from one infected — exactly one possible interaction, the
    /// infection, each step with probability 1.
    #[test]
    fn deterministic_chain_has_zero_variance() {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore_from(&proto, vec![1, 1], 100).unwrap();
        let m = hitting_moments(&graph, |cfg| cfg[0] == 0, SolverOptions::default()).unwrap();
        assert!((m.mean - 1.0).abs() < 1e-9);
        assert!(m.std_dev < 1e-6, "std = {}", m.std_dev);
    }

    #[test]
    fn unreachable_stable_set_is_detected() {
        // No rules at all: the start config is the only one; a stable
        // predicate that rejects it must error.
        let mut spec = ProtocolSpec::new("inert");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore(&proto, 3, 10).unwrap();
        let err = expected_interactions(&graph, |_| false, SolverOptions::default()).unwrap_err();
        assert_eq!(err, HittingError::NoStableConfigs);
    }

    #[test]
    fn trap_configuration_is_detected() {
        // (a, a) -> (b, b) and (a, c) -> (c, c). From (2, 0, 1) the
        // all-c stable configuration is reachable via two (a, c) steps,
        // but the (a, a) step leads to the trap (0, 2, 1), from which
        // nothing fires: the expectation is infinite and the solver must
        // say so rather than diverge.
        let mut spec = ProtocolSpec::new("trap");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule_symmetric(a, c, c, c);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore_from(&proto, vec![2, 0, 1], 100).unwrap();
        let err =
            expected_interactions(&graph, |cfg| cfg[2] == 3, SolverOptions::default()).unwrap_err();
        assert!(
            matches!(err, HittingError::StableSetUnreachable(_)),
            "{err:?}"
        );
        let _ = b;
    }

    #[test]
    fn stable_start_is_zero() {
        let mut spec = ProtocolSpec::new("inert");
        let a = spec.add_state("a", 1);
        spec.set_initial(a);
        let proto = spec.compile().unwrap();
        let graph = ConfigGraph::explore(&proto, 3, 10).unwrap();
        let ht = expected_interactions(&graph, |_| true, SolverOptions::default()).unwrap();
        assert_eq!(ht.expected_from_initial, 0.0);
        assert_eq!(ht.sweeps, 1);
    }
}
