//! # pp-verify — exhaustive verification under global fairness
//!
//! Sampling random executions can never *prove* a population protocol
//! correct under global fairness: fairness is a property of infinite
//! schedules. This crate verifies correctness mechanically for concrete
//! `(protocol, n)` instances by exhausting the configuration space.
//!
//! ## The reduction
//!
//! Configurations of an anonymous population on a complete interaction
//! graph are count vectors over `Q` summing to `n`; transitions are the
//! enabled non-identity rule applications. The key semantic fact (see
//! [`ConfigGraph::terminal_sccs`]) is:
//!
//! > Under global fairness, every infinite execution eventually visits
//! > exactly the configurations of one **terminal strongly connected
//! > component** of the reachable-configuration digraph, each infinitely
//! > often.
//!
//! Hence a protocol *stably solves* a partition problem iff every terminal
//! SCC reachable from the initial configuration is **good**: all its
//! configurations satisfy the target predicate, and no transition inside
//! it changes any agent's output group.
//! [`ConfigGraph::verify_stable_partition`] checks exactly this, and
//! [`ConfigGraph::check_invariant`] validates state invariants (such as
//! the paper's Lemma 1) over *every* reachable configuration — the
//! mechanical counterpart of the paper's Theorem 1 and Lemma 1 for small
//! instances.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]
#![warn(missing_docs)]

pub mod hitting;
pub mod oracle;

use pp_engine::population::Population;
use pp_engine::protocol::{CompiledProtocol, StateId};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The verifier's series in the process-wide telemetry registry:
///
/// | name                      | kind    | meaning |
/// |---------------------------|---------|---------|
/// | `verify.explorations`     | counter | configuration-space explorations started |
/// | `verify.configs_explored` | counter | configurations discovered (incl. aborted runs) |
/// | `verify.frontier_peak`    | gauge   | max BFS/DFS frontier length seen (high-water) |
/// | `verify.sccs`             | counter | strongly connected components found |
/// | `verify.terminal_sccs`    | counter | of those, terminal |
struct VerifyMetrics {
    explorations: Arc<pp_telemetry::Counter>,
    configs_explored: Arc<pp_telemetry::Counter>,
    frontier_peak: Arc<pp_telemetry::Gauge>,
    sccs: Arc<pp_telemetry::Counter>,
    terminal_sccs: Arc<pp_telemetry::Counter>,
}

fn verify_metrics() -> &'static VerifyMetrics {
    static GLOBAL: OnceLock<VerifyMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = pp_telemetry::global();
        VerifyMetrics {
            explorations: reg.counter("verify.explorations"),
            configs_explored: reg.counter("verify.configs_explored"),
            frontier_peak: reg.gauge("verify.frontier_peak"),
            sccs: reg.counter("verify.sccs"),
            terminal_sccs: reg.counter("verify.terminal_sccs"),
        }
    })
}

/// Errors during configuration-space exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The reachable space exceeded the supplied configuration budget.
    TooManyConfigs {
        /// The budget that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::TooManyConfigs { limit } => {
                write!(f, "more than {limit} reachable configurations")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// The reachable-configuration digraph of `(protocol, n)`.
pub struct ConfigGraph<'a> {
    // (Debug intentionally omitted: graphs can hold 10^5+ configs; use
    // `num_configs`/`config` for inspection.)
    proto: &'a CompiledProtocol,
    n: u64,
    configs: Vec<Box<[u32]>>,
    /// `succs[i]` — successor config ids of config `i`, sorted, deduped.
    succs: Vec<Vec<u32>>,
}

impl<'a> ConfigGraph<'a> {
    /// Explore all configurations reachable from the all-`initial`
    /// configuration of `n` agents, with a budget guard.
    ///
    /// Budget guidance: the whole space has `C(n + |Q| − 1, |Q| − 1)`
    /// configurations; reachable subsets are usually far smaller. The
    /// paper-scale instances used in tests (`k ≤ 4`, `n ≤ 12`) stay under
    /// a few hundred thousand.
    pub fn explore(
        proto: &'a CompiledProtocol,
        n: u64,
        max_configs: usize,
    ) -> Result<Self, ExploreError> {
        let mut init = vec![0u32; proto.num_states()];
        init[proto.initial_state().index()] = u32::try_from(n).expect("n fits in u32");
        Self::explore_from(proto, init, max_configs)
    }

    /// Explore from an arbitrary starting configuration.
    pub fn explore_from(
        proto: &'a CompiledProtocol,
        start: Vec<u32>,
        max_configs: usize,
    ) -> Result<Self, ExploreError> {
        assert_eq!(start.len(), proto.num_states());
        let n = start.iter().map(|&c| u64::from(c)).sum();
        let metrics = verify_metrics();
        metrics.explorations.inc();
        let mut configs: Vec<Box<[u32]>> = Vec::new();
        let mut index: HashMap<Box<[u32]>, u32> = HashMap::new();
        let mut succs: Vec<Vec<u32>> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();

        let start: Box<[u32]> = start.into();
        index.insert(start.clone(), 0);
        configs.push(start);
        succs.push(Vec::new());
        frontier.push(0);
        let mut frontier_peak = frontier.len();

        while let Some(id) = frontier.pop() {
            let cfg = configs[id as usize].clone();
            let mut out: Vec<u32> = Vec::new();
            for (pi, &cp) in cfg.iter().enumerate() {
                if cp == 0 {
                    continue;
                }
                let p = StateId(pi as u16);
                for (qi, &cq) in cfg.iter().enumerate() {
                    if cq < if pi == qi { 2 } else { 1 } {
                        continue;
                    }
                    let q = StateId(qi as u16);
                    if proto.is_identity(p, q) {
                        continue;
                    }
                    let (p2, q2) = proto.delta(p, q);
                    let mut next: Box<[u32]> = cfg.clone();
                    next[p.index()] -= 1;
                    next[q.index()] -= 1;
                    next[p2.index()] += 1;
                    next[q2.index()] += 1;
                    let nid = match index.get(&next) {
                        Some(&nid) => nid,
                        None => {
                            if configs.len() >= max_configs {
                                // Account for the aborted run too, so an
                                // export after TooManyConfigs still shows
                                // how far exploration got.
                                metrics.configs_explored.add(configs.len() as u64);
                                metrics.frontier_peak.set_max(frontier_peak as u64);
                                return Err(ExploreError::TooManyConfigs { limit: max_configs });
                            }
                            let nid = configs.len() as u32;
                            index.insert(next.clone(), nid);
                            configs.push(next);
                            succs.push(Vec::new());
                            frontier.push(nid);
                            frontier_peak = frontier_peak.max(frontier.len());
                            nid
                        }
                    };
                    out.push(nid);
                }
            }
            out.sort_unstable();
            out.dedup();
            succs[id as usize] = out;
        }
        metrics.configs_explored.add(configs.len() as u64);
        metrics.frontier_peak.set_max(frontier_peak as u64);
        Ok(ConfigGraph {
            proto,
            n,
            configs,
            succs,
        })
    }

    /// The protocol this graph was built for.
    pub fn protocol(&self) -> &CompiledProtocol {
        self.proto
    }

    /// Population size `n`.
    pub fn population_size(&self) -> u64 {
        self.n
    }

    /// Number of reachable configurations.
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// The count vector of configuration `id`.
    pub fn config(&self, id: u32) -> &[u32] {
        &self.configs[id as usize]
    }

    /// Successor ids of configuration `id`.
    pub fn successors(&self, id: u32) -> &[u32] {
        &self.succs[id as usize]
    }

    /// Check a predicate over every reachable configuration; returns the
    /// id of the first violating configuration, or `None` if the
    /// invariant holds everywhere.
    pub fn check_invariant<F: FnMut(&[u32]) -> bool>(&self, mut inv: F) -> Option<u32> {
        (0..self.configs.len() as u32).find(|&id| !inv(self.config(id)))
    }

    /// Strongly connected components (Tarjan, iterative), returned as
    /// `(scc_id_of_config, number_of_sccs)`.
    fn sccs(&self) -> (Vec<u32>, usize) {
        let n = self.configs.len();
        const UNVISITED: u32 = u32::MAX;
        let mut idx = vec![UNVISITED; n]; // discovery index
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![UNVISITED; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut counter: u32 = 0;
        let mut scc_count: usize = 0;
        // Explicit DFS stack: (node, next-successor-position).
        let mut dfs: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if idx[root as usize] != UNVISITED {
                continue;
            }
            dfs.push((root, 0));
            idx[root as usize] = counter;
            low[root as usize] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root as usize] = true;

            while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
                if *pos < self.succs[v as usize].len() {
                    let w = self.succs[v as usize][*pos];
                    *pos += 1;
                    if idx[w as usize] == UNVISITED {
                        idx[w as usize] = counter;
                        low[w as usize] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        dfs.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(idx[w as usize]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&mut (parent, _)) = dfs.last_mut() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == idx[v as usize] {
                        // v roots an SCC: pop it.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = scc_count as u32;
                            if w == v {
                                break;
                            }
                        }
                        scc_count += 1;
                    }
                }
            }
        }
        verify_metrics().sccs.add(scc_count as u64);
        (scc_of, scc_count)
    }

    /// The terminal SCCs (no edge leaving the component), as lists of
    /// configuration ids.
    ///
    /// **Semantics.** Under global fairness every infinite execution ends
    /// up in one terminal SCC: in a finite graph some configuration `C`
    /// recurs infinitely often; global fairness then forces every
    /// configuration reachable from `C` to recur infinitely often, so the
    /// infinitely-recurring set is successor-closed; configurations
    /// outside it stop occurring after finitely many steps, so the
    /// execution's tail walks inside the set, and mutual reachability
    /// within the tail makes it strongly connected — i.e. a terminal SCC.
    /// Conversely, for every terminal SCC there are globally fair
    /// executions settling in it. A property therefore holds for *all*
    /// globally fair executions iff it holds for all terminal SCCs.
    pub fn terminal_sccs(&self) -> Vec<Vec<u32>> {
        let (scc_of, scc_count) = self.sccs();
        let mut terminal = vec![true; scc_count];
        for (v, out) in self.succs.iter().enumerate() {
            for &w in out {
                if scc_of[v] != scc_of[w as usize] {
                    terminal[scc_of[v] as usize] = false;
                }
            }
        }
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); scc_count];
        for v in 0..self.configs.len() as u32 {
            let s = scc_of[v as usize];
            if terminal[s as usize] {
                groups[s as usize].push(v);
            }
        }
        groups.retain(|g| !g.is_empty());
        verify_metrics().terminal_sccs.add(groups.len() as u64);
        groups
    }

    /// Verify that the protocol stably solves a partition problem: every
    /// terminal SCC must (a) consist of configurations whose group counts
    /// satisfy `good_groups`, and (b) contain no transition that changes
    /// the group of a participating agent (so each agent's output is
    /// constant on the execution's tail).
    pub fn verify_stable_partition<F>(&self, mut good_groups: F) -> VerifyReport
    where
        F: FnMut(&[u64]) -> bool,
    {
        let terminals = self.terminal_sccs();
        let mut report = VerifyReport {
            num_configs: self.num_configs(),
            num_terminal_sccs: terminals.len(),
            failure: None,
        };
        for scc in &terminals {
            for &id in scc {
                let cfg = self.config(id);
                let groups = self.group_sizes(cfg);
                if !good_groups(&groups) {
                    report.failure = Some(VerifyFailure::BadGroupSizes { config: id, groups });
                    return report;
                }
                // Any transition enabled in a terminal-SCC configuration
                // stays in the SCC; it must not move an agent's group.
                for (pi, &cp) in cfg.iter().enumerate() {
                    if cp == 0 {
                        continue;
                    }
                    let p = StateId(pi as u16);
                    for (qi, &cq) in cfg.iter().enumerate() {
                        if cq < if pi == qi { 2 } else { 1 } {
                            continue;
                        }
                        let q = StateId(qi as u16);
                        if self.proto.is_group_changing(p, q) {
                            report.failure =
                                Some(VerifyFailure::GroupChangeInTail { config: id, p, q });
                            return report;
                        }
                    }
                }
            }
        }
        report
    }

    /// Group-size vector (1-based groups at index `g − 1`) of a
    /// configuration.
    pub fn group_sizes(&self, cfg: &[u32]) -> Vec<u64> {
        let mut sizes = vec![0u64; self.proto.num_groups()];
        for (si, &c) in cfg.iter().enumerate() {
            sizes[self.proto.group_of(StateId(si as u16)).number() - 1] += u64::from(c);
        }
        sizes
    }

    /// Ids of configurations satisfying a predicate.
    pub fn matching_configs<F: FnMut(&[u32]) -> bool>(&self, mut pred: F) -> Vec<u32> {
        (0..self.configs.len() as u32)
            .filter(|&id| pred(self.config(id)))
            .collect()
    }

    /// Convert a configuration into the engine's `u64` count form.
    pub fn to_counts(&self, id: u32) -> Vec<u64> {
        self.config(id).iter().map(|&c| u64::from(c)).collect()
    }

    /// For every configuration, the maximum value of `score` over all
    /// configurations reachable from it (including itself) — computed in
    /// O(V + E) by dynamic programming over the SCC condensation in
    /// reverse topological order.
    ///
    /// This turns the paper's progress lemmas into mechanical checks:
    /// Lemma 2/3 state that from any configuration with
    /// `n − k·#g_k ≥ k`, a configuration with one more `g_k` agent is
    /// reachable — i.e. `max_reachable(#g_k)` exceeds the local `#g_k`
    /// everywhere except where the partition is already complete.
    pub fn max_reachable<F>(&self, mut score: F) -> Vec<u64>
    where
        F: FnMut(&[u32]) -> u64,
    {
        let (scc_of, scc_count) = self.sccs();
        // Tarjan emits SCCs in reverse topological order (an SCC is
        // completed only after everything reachable from it), so
        // scc id 0, 1, … is already a valid processing order.
        let mut best = vec![0u64; scc_count];
        for v in 0..self.configs.len() as u32 {
            let s = scc_of[v as usize] as usize;
            best[s] = best[s].max(score(self.config(v)));
        }
        // Tarjan pops an SCC only after every SCC reachable from it, so
        // cross edges always point to strictly smaller SCC ids and one
        // ascending-id pass propagates successor maxima correctly.
        let mut scc_members: Vec<Vec<u32>> = vec![Vec::new(); scc_count];
        for v in 0..self.configs.len() as u32 {
            scc_members[scc_of[v as usize] as usize].push(v);
        }
        for s in 0..scc_count {
            let mut b = best[s];
            for &v in &scc_members[s] {
                for &w in &self.succs[v as usize] {
                    let sw = scc_of[w as usize] as usize;
                    if sw != s {
                        debug_assert!(sw < s, "tarjan emission order violated");
                        b = b.max(best[sw]);
                    }
                }
            }
            best[s] = b;
        }
        (0..self.configs.len())
            .map(|v| best[scc_of[v] as usize])
            .collect()
    }

    /// Length of the *shortest* interaction sequence from the root
    /// configuration to one satisfying `stable` — the stabilisation time
    /// under an optimal (omniscient) scheduler, i.e. the best case global
    /// fairness must eventually realise. `None` if no stable
    /// configuration is reachable.
    ///
    /// The gap between this and [`crate::hitting::expected_interactions`]
    /// quantifies what the *uniform random* scheduler costs relative to
    /// the constructive schedules in the paper's Lemmas 2–3.
    pub fn min_interactions_to<F>(&self, mut stable: F) -> Option<u64>
    where
        F: FnMut(&[u32]) -> bool,
    {
        let mut dist: Vec<u64> = vec![u64::MAX; self.num_configs()];
        let mut queue = std::collections::VecDeque::new();
        dist[0] = 0;
        queue.push_back(0u32);
        if stable(self.config(0)) {
            return Some(0);
        }
        while let Some(v) = queue.pop_front() {
            for &w in self.successors(v) {
                if dist[w as usize] == u64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    if stable(self.config(w)) {
                        return Some(dist[w as usize]);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// Render the configuration graph as GraphViz DOT, highlighting
    /// configurations in terminal SCCs. Practical for graphs up to a few
    /// hundred configurations (render with `dot -Tsvg`).
    pub fn to_dot(&self, name: &str) -> String {
        let labels: Vec<String> = (0..self.num_configs() as u32)
            .map(|id| pp_engine::trace::counts_pretty(self.proto, &self.to_counts(id)))
            .collect();
        let mut edges = Vec::new();
        for v in 0..self.num_configs() as u32 {
            for &w in self.successors(v) {
                edges.push((v, w));
            }
        }
        let mut stable = vec![false; self.num_configs()];
        for scc in self.terminal_sccs() {
            for id in scc {
                stable[id as usize] = true;
            }
        }
        pp_engine::dot::config_graph_dot(name, &labels, &edges, &stable)
    }
}

/// Why a stable-partition verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyFailure {
    /// A terminal-SCC configuration has wrong group sizes.
    BadGroupSizes {
        /// Offending configuration id.
        config: u32,
        /// Its group-size vector.
        groups: Vec<u64>,
    },
    /// A transition enabled on the execution's tail changes a group.
    GroupChangeInTail {
        /// Offending configuration id.
        config: u32,
        /// First state of the offending pair.
        p: StateId,
        /// Second state of the offending pair.
        q: StateId,
    },
}

/// Result of [`ConfigGraph::verify_stable_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Total reachable configurations explored.
    pub num_configs: usize,
    /// Number of terminal SCCs found.
    pub num_terminal_sccs: usize,
    /// `None` iff verification succeeded.
    pub failure: Option<VerifyFailure>,
}

impl VerifyReport {
    /// Whether the protocol was verified correct on this instance.
    pub fn verified(&self) -> bool {
        self.failure.is_none()
    }
}

/// Convenience: verify a protocol against an expected stable group-size
/// vector (order-sensitive, as in the paper's Lemma 6).
pub fn verify_partition_sizes(
    proto: &CompiledProtocol,
    n: u64,
    expected: &[u64],
    max_configs: usize,
) -> Result<VerifyReport, ExploreError> {
    let graph = ConfigGraph::explore(proto, n, max_configs)?;
    Ok(graph.verify_stable_partition(|groups| groups == expected))
}

/// Sanity cross-check between the simulator and the model checker:
/// whether a count population's configuration appears in the graph.
pub fn contains_population(
    graph: &ConfigGraph<'_>,
    pop: &pp_engine::population::CountPopulation,
) -> bool {
    let as_u32: Vec<u32> = pop.counts().iter().map(|&c| c as u32).collect();
    !graph
        .matching_configs(|cfg| cfg == as_u32.as_slice())
        .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    fn epidemic() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("epidemic");
        let s = spec.add_state("S", 1);
        let i = spec.add_state("I", 2);
        spec.set_initial(s);
        spec.add_rule_symmetric(i, s, i, i);
        spec.compile().unwrap()
    }

    /// Epidemic from all-S: nothing is reachable (no infected agent), so
    /// the space is the single initial configuration, which is terminal.
    #[test]
    fn epidemic_from_all_susceptible_is_inert() {
        let p = epidemic();
        let g = ConfigGraph::explore(&p, 5, 1000).unwrap();
        assert_eq!(g.num_configs(), 1);
        let t = g.terminal_sccs();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], vec![0]);
    }

    #[test]
    fn epidemic_from_one_infected_reaches_all_infection_levels() {
        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![4, 1], 1000).unwrap();
        // Configurations: (4,1), (3,2), (2,3), (1,4), (0,5).
        assert_eq!(g.num_configs(), 5);
        let t = g.terminal_sccs();
        assert_eq!(t.len(), 1);
        assert_eq!(g.config(t[0][0]), &[0, 5]);
        // All-infected is the unique stable outcome.
        let report = g.verify_stable_partition(|groups| groups == [0, 5]);
        assert!(report.verified(), "{report:?}");
        // A wrong target is rejected.
        let report = g.verify_stable_partition(|groups| groups == [1, 4]);
        assert!(!report.verified());
    }

    #[test]
    fn invariant_checking_reports_violations() {
        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![4, 1], 1000).unwrap();
        // Total population is invariant.
        assert_eq!(g.check_invariant(|c| c[0] + c[1] == 5), None);
        // "Never more than 3 infected" is violated somewhere.
        assert!(g.check_invariant(|c| c[1] <= 3).is_some());
    }

    /// A flip cycle forms one terminal SCC of two configurations.
    #[test]
    fn flip_cycle_is_single_terminal_scc() {
        let mut spec = ProtocolSpec::new("flip");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        let p = spec.compile().unwrap();
        let g = ConfigGraph::explore(&p, 2, 100).unwrap();
        assert_eq!(g.num_configs(), 2);
        let t = g.terminal_sccs();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].len(), 2);
        // Both states are group 1, so the partition {2} is stable.
        let report = g.verify_stable_partition(|groups| groups == [2]);
        assert!(report.verified());
    }

    /// Group-changing flip cycles must be caught by condition (b).
    #[test]
    fn group_changing_tail_is_rejected() {
        let mut spec = ProtocolSpec::new("badflip");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2); // different group!
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        let p = spec.compile().unwrap();
        let g = ConfigGraph::explore(&p, 2, 100).unwrap();
        let report = g.verify_stable_partition(|_| true);
        assert!(matches!(
            report.failure,
            Some(VerifyFailure::GroupChangeInTail { .. })
        ));
    }

    #[test]
    fn budget_guard_fires() {
        let p = epidemic();
        let err = match ConfigGraph::explore_from(&p, vec![50, 1], 3) {
            Err(e) => e,
            Ok(_) => panic!("expected budget error"),
        };
        assert_eq!(err, ExploreError::TooManyConfigs { limit: 3 });
    }

    #[test]
    fn multiple_terminal_sccs_detected() {
        // Two distinct sinks reachable from 4 agents:
        // (a,a) -> (b,b) and (a,b) -> (c,c). From (2,2,0) the execution
        // can go to the sink (0,4,0) via (a,a), or via (a,b) twice to the
        // sink (0,0,4).
        let mut spec = ProtocolSpec::new("forks");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 1);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule_symmetric(a, b, c, c);
        let p = spec.compile().unwrap();
        let g = ConfigGraph::explore(&p, 4, 1000).unwrap();
        let t = g.terminal_sccs();
        assert!(t.len() >= 2, "{t:?}");
        for scc in &t {
            assert_eq!(scc.len(), 1);
            assert!(g.successors(scc[0]).is_empty());
        }
        let _ = c;
    }

    #[test]
    fn max_reachable_propagates_through_sccs() {
        // Flip loop (a <-> b) that can escape to an absorbing c:
        // (a,a)->(b,b), (b,b)->(a,a), (a,c)->(c,c).
        let mut spec = ProtocolSpec::new("escape");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let c = spec.add_state("c", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        spec.add_rule_symmetric(a, c, c, c);
        let p = spec.compile().unwrap();
        let g = ConfigGraph::explore_from(&p, vec![2, 0, 1], 100).unwrap();
        // Score = number of c agents; every configuration can reach all-c.
        let best = g.max_reachable(|cfg| u64::from(cfg[2]));
        assert!(best.iter().all(|&x| x == 3), "{best:?}");
        // Score = number of b agents: only configurations that still hold
        // two free (a/b) agents can reach b = 2; once an agent has been
        // absorbed by c the flip pair is gone forever.
        let best_b = g.max_reachable(|cfg| u64::from(cfg[1]));
        for id in 0..g.num_configs() as u32 {
            let cfg = g.config(id);
            let expect = if cfg[0] + cfg[1] >= 2 { 2 } else { 0 };
            assert_eq!(best_b[id as usize], expect, "config {cfg:?}");
        }
    }

    #[test]
    fn min_interactions_bfs() {
        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![4, 1], 1000).unwrap();
        // Infections are forced one per effective interaction: 4 needed.
        assert_eq!(g.min_interactions_to(|c| c[0] == 0), Some(4));
        assert_eq!(g.min_interactions_to(|c| c[1] >= 2), Some(1));
        assert_eq!(g.min_interactions_to(|c| c[1] == 1), Some(0)); // start
        assert_eq!(g.min_interactions_to(|c| c[0] == 9), None); // impossible
    }

    #[test]
    fn dot_export_highlights_terminals() {
        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![2, 1], 100).unwrap();
        let dot = g.to_dot("epidemic3");
        assert!(dot.contains("digraph \"epidemic3\""));
        // The all-infected sink is highlighted.
        assert!(dot.contains("I×3"));
        assert!(dot.contains("lightgreen"));
        // Three configurations, two infection edges.
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn to_counts_roundtrip() {
        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![2, 1], 100).unwrap();
        assert_eq!(g.to_counts(0), vec![2, 1]);
        assert_eq!(g.population_size(), 3);
    }

    /// Exploration and SCC analysis accrue into the global telemetry
    /// registry — deltas only, since other tests share the registry.
    #[test]
    fn telemetry_counts_explorations_and_sccs() {
        let snap = |name: &str| {
            pp_telemetry::Snapshot::capture_global()
                .value(name)
                .unwrap_or(0)
        };
        let explorations0 = snap("verify.explorations");
        let configs0 = snap("verify.configs_explored");
        let sccs0 = snap("verify.sccs");
        let terminals0 = snap("verify.terminal_sccs");

        let p = epidemic();
        let g = ConfigGraph::explore_from(&p, vec![4, 1], 1000).unwrap();
        let t = g.terminal_sccs();
        assert_eq!(t.len(), 1);

        assert_eq!(snap("verify.explorations"), explorations0 + 1);
        // The epidemic chain has 5 reachable configurations, each its own
        // SCC (all transitions strictly increase the infected count).
        assert_eq!(snap("verify.configs_explored"), configs0 + 5);
        assert_eq!(snap("verify.sccs"), sccs0 + 5);
        assert_eq!(snap("verify.terminal_sccs"), terminals0 + 1);
        assert!(snap("verify.frontier_peak") >= 1);

        // The budget-abort path still flushes its partial tally.
        let before_abort = snap("verify.configs_explored");
        let Err(err) = ConfigGraph::explore_from(&p, vec![4, 1], 2) else {
            panic!("budget of 2 must abort a 5-config space");
        };
        assert_eq!(err, ExploreError::TooManyConfigs { limit: 2 });
        assert!(snap("verify.configs_explored") >= before_abort + 2);
    }
}
