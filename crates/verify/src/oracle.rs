//! Invariant-guided pruning: certify linear invariants inductively
//! instead of exploring the configuration space.
//!
//! A *linear invariant* is a functional `y` over state counts whose
//! value is constant along every execution. The model checker's
//! historical way to check one — [`crate::ConfigGraph::check_invariant`]
//! over the full reachable graph — costs one configuration visit per
//! reachable configuration (hundreds of thousands at paper-scale
//! `(k, n)`). This module implements the sound shortcut: if `y` has
//! zero drift on **every rule** of the table (an `O(|Q|²)` algebraic
//! check), then its value is conserved by induction on execution length,
//! so it holds at every reachable configuration of *every* population
//! size — with zero exploration. [`check_conserved`] tries that
//! certificate first and only falls back to exhaustive exploration when
//! the inductive proof fails (e.g. deliberately broken protocols in the
//! mutation tests), reporting how many configurations each path visited
//! so the pruning is measurable.
//!
//! Invariants arrive as plain coefficient vectors, typically exported by
//! pp-lint's displacement-matrix analysis (`pp_lint::Functional` ↦
//! [`LinearInvariant`] is a field-for-field conversion at the call
//! site); pp-verify deliberately does not depend on the analyzer.

use crate::{ConfigGraph, ExploreError};
use pp_engine::protocol::{CompiledProtocol, StateId};
use std::sync::{Arc, OnceLock};

/// | name                      | kind    | meaning |
/// |---------------------------|---------|---------|
/// | `verify.pruned_checks`    | counter | invariant checks settled by inductive certificate (0 configs) |
/// | `verify.fallback_checks`  | counter | invariant checks that fell back to exhaustive exploration |
struct OracleMetrics {
    pruned_checks: Arc<pp_telemetry::Counter>,
    fallback_checks: Arc<pp_telemetry::Counter>,
}

fn oracle_metrics() -> &'static OracleMetrics {
    static GLOBAL: OnceLock<OracleMetrics> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let reg = pp_telemetry::global();
        OracleMetrics {
            pruned_checks: reg.counter("verify.pruned_checks"),
            fallback_checks: reg.counter("verify.fallback_checks"),
        }
    })
}

/// A linear functional over state counts, claimed invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearInvariant {
    /// Human-readable name (e.g. `"lemma1[x=2]"`).
    pub name: String,
    /// One coefficient per state, indexed by `StateId`.
    pub coeffs: Vec<i64>,
}

impl LinearInvariant {
    /// Build a named invariant.
    pub fn new(name: impl Into<String>, coeffs: Vec<i64>) -> Self {
        LinearInvariant {
            name: name.into(),
            coeffs,
        }
    }

    /// Evaluate at a configuration (count vector).
    pub fn value_at(&self, cfg: &[u32]) -> i64 {
        assert_eq!(cfg.len(), self.coeffs.len());
        self.coeffs
            .iter()
            .zip(cfg)
            .map(|(&y, &c)| y * i64::from(c))
            .sum()
    }

    /// The conserved value on executions from all-`s0` with `n` agents.
    pub fn initial_value(&self, proto: &CompiledProtocol, n: u64) -> i64 {
        self.coeffs[proto.initial_state().index()] * n as i64
    }

    /// Net change of the functional when rule `(p, q)` fires.
    pub fn drift(&self, proto: &CompiledProtocol, p: StateId, q: StateId) -> i64 {
        let (p2, q2) = proto.delta(p, q);
        self.coeffs[p2.index()] + self.coeffs[q2.index()]
            - self.coeffs[p.index()]
            - self.coeffs[q.index()]
    }
}

/// Why an inductive certificate failed: the first rule with drift.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Refutation {
    /// First state of the drifting ordered pair.
    pub p: StateId,
    /// Second state of the drifting ordered pair.
    pub q: StateId,
    /// The (non-zero) net change the rule applies to the functional.
    pub drift: i64,
}

/// Try to prove `inv` conserved by induction: zero drift on every
/// non-identity rule. Returns the first drifting rule on failure.
///
/// Soundness: the initial configuration trivially has the initial value,
/// and each interaction changes the value by the fired rule's drift, so
/// zero drift everywhere ⇒ the value is constant along every execution —
/// for any population size, without enumerating configurations.
pub fn certify(proto: &CompiledProtocol, inv: &LinearInvariant) -> Result<(), Refutation> {
    assert_eq!(inv.coeffs.len(), proto.num_states());
    for e in proto.rule_entries() {
        let drift = inv.drift(proto, e.p, e.q);
        if drift != 0 {
            return Err(Refutation {
                p: e.p,
                q: e.q,
                drift,
            });
        }
    }
    Ok(())
}

/// Result of [`check_conserved`].
#[derive(Clone, Debug)]
pub struct InvariantCheck {
    /// Whether `inv` keeps its initial value on every reachable
    /// configuration of `(proto, n)`.
    pub holds: bool,
    /// Whether the verdict came from the inductive certificate (true) or
    /// exhaustive exploration (false).
    pub pruned: bool,
    /// Configurations visited to reach the verdict: 0 when pruned, the
    /// reachable-set size otherwise.
    pub configs_explored: usize,
    /// A reachable configuration violating the invariant, when one
    /// exists (exhaustive path only).
    pub counterexample: Option<Vec<u32>>,
    /// The refutation that disabled the certificate, if any.
    pub refutation: Option<Refutation>,
}

/// Check that `inv` holds (keeps its all-`s0` initial value) on every
/// configuration of `(proto, n)` reachable from all-`s0`.
///
/// Tries [`certify`] first — success settles the check with **zero**
/// exploration. On refutation, falls back to building the full
/// [`ConfigGraph`] and checking every reachable configuration, which
/// also produces a concrete counterexample when the invariant fails.
/// Both paths agree on the verdict whenever the certificate succeeds
/// (certification is sound, not complete: a refuted functional may still
/// hold on the reachable subset, which only the fallback can decide).
pub fn check_conserved(
    proto: &CompiledProtocol,
    n: u64,
    max_configs: usize,
    inv: &LinearInvariant,
) -> Result<InvariantCheck, ExploreError> {
    match certify(proto, inv) {
        Ok(()) => {
            oracle_metrics().pruned_checks.inc();
            Ok(InvariantCheck {
                holds: true,
                pruned: true,
                configs_explored: 0,
                counterexample: None,
                refutation: None,
            })
        }
        Err(refutation) => {
            oracle_metrics().fallback_checks.inc();
            let graph = ConfigGraph::explore(proto, n, max_configs)?;
            let expected = inv.initial_value(proto, n);
            let bad = graph.check_invariant(|cfg| inv.value_at(cfg) == expected);
            Ok(InvariantCheck {
                holds: bad.is_none(),
                pruned: false,
                configs_explored: graph.num_configs(),
                counterexample: bad.map(|id| graph.config(id).to_vec()),
                refutation: Some(refutation),
            })
        }
    }
}

/// Certify a batch of invariants; returns `Ok` only if every one is
/// conserved by every rule (the "all Lemma 1 residuals at once" form).
pub fn certify_all(
    proto: &CompiledProtocol,
    invs: &[LinearInvariant],
) -> Result<(), (usize, Refutation)> {
    for (i, inv) in invs.iter().enumerate() {
        certify(proto, inv).map_err(|r| (i, r))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::spec::ProtocolSpec;

    fn flip() -> CompiledProtocol {
        let mut spec = ProtocolSpec::new("flip");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 2);
        spec.set_initial(a);
        spec.add_rule(a, a, b, b);
        spec.add_rule(b, b, a, a);
        spec.compile().unwrap()
    }

    #[test]
    fn certified_invariant_needs_no_exploration() {
        let p = flip();
        let total = LinearInvariant::new("total", vec![1, 1]);
        assert_eq!(certify(&p, &total), Ok(()));
        let check = check_conserved(&p, 64, 10_000, &total).unwrap();
        assert!(check.holds);
        assert!(check.pruned);
        assert_eq!(check.configs_explored, 0);
    }

    #[test]
    fn refuted_invariant_falls_back_and_finds_counterexample() {
        let p = flip();
        let count_a = LinearInvariant::new("a", vec![1, 0]);
        let refutation = certify(&p, &count_a).unwrap_err();
        assert_eq!(refutation.drift, -2);
        let check = check_conserved(&p, 6, 10_000, &count_a).unwrap();
        assert!(!check.holds);
        assert!(!check.pruned);
        assert!(check.configs_explored > 0);
        let cx = check.counterexample.unwrap();
        assert_ne!(count_a.value_at(&cx), count_a.initial_value(&p, 6));
    }

    #[test]
    fn fallback_agrees_with_certificate_when_invariant_actually_holds() {
        // A functional conserved on the reachable set but refuted by a
        // *dead* rule: certification is sound but incomplete, and the
        // fallback gives the sharper (still correct) verdict.
        let mut spec = ProtocolSpec::new("deadrule");
        let a = spec.add_state("a", 1);
        let b = spec.add_state("b", 1);
        let z = spec.add_state("z", 2);
        spec.set_initial(a);
        spec.add_rule_symmetric(a, a, a, b); // reachable churn, conserves z
        spec.add_rule_symmetric(z, b, z, z); // dead: z never appears
        let p = spec.compile().unwrap();
        let count_z = LinearInvariant::new("z", vec![0, 0, 1]);
        assert!(certify(&p, &count_z).is_err());
        let check = check_conserved(&p, 5, 10_000, &count_z).unwrap();
        assert!(check.holds, "z stays 0 on the reachable set");
        assert!(!check.pruned);
    }

    #[test]
    fn batch_certification_reports_offending_index() {
        let p = flip();
        let invs = vec![
            LinearInvariant::new("total", vec![1, 1]),
            LinearInvariant::new("a", vec![1, 0]),
        ];
        let (idx, r) = certify_all(&p, &invs).unwrap_err();
        assert_eq!(idx, 1);
        assert_ne!(r.drift, 0);
    }

    #[test]
    fn budget_error_propagates_on_fallback() {
        let p = flip();
        let count_a = LinearInvariant::new("a", vec![1, 0]);
        assert!(matches!(
            check_conserved(&p, 100, 3, &count_a),
            Err(ExploreError::TooManyConfigs { limit: 3 })
        ));
    }
}
