//! `pp-verify` — command-line front end for the exhaustive verifier.
//!
//! ```text
//! pp-verify report [--k-max K] [--n-cap N] [--max-configs M]
//!                  [--wall-budget-secs S] [--hitting-cap C] [--out PATH]
//! ```
//!
//! `report` climbs the `(k, n)` ladder of the paper's uniform
//! k-partition protocol and, for every instance it can afford, builds
//! the full reachable-configuration graph and verifies the partition
//! stably correct under global fairness (Lemmas 4–6 as an exact
//! terminal-SCC check). The result is the repo's **checked envelope** —
//! how far exhaustive verification currently reaches — written as
//! `BENCH_verify.json` in the same trajectory-append schema as
//! `BENCH_engine.json`:
//!
//! * integer-only numbers (micros, counts);
//! * per-cell `censored` flags — a cell that blew the configuration
//!   budget is reported with how far exploration got, not dropped;
//! * explicit `speedup_basis` on every speedup-style ratio. Here the
//!   ratio is the *scheduler gap*: exact expected interactions under
//!   the uniform random scheduler (first-step analysis) over the
//!   shortest stabilising schedule (what global fairness must
//!   eventually realise), basis `"interactions"`.
//!
//! Budgets: `--max-configs` bounds one exploration (the cell is
//! censored past it), `--wall-budget-secs` bounds the whole report
//! (remaining ladder rungs are censored), and `--hitting-cap` bounds
//! the graphs on which the Gauss–Seidel hitting-time solve is
//! attempted (bigger graphs simply omit the gap fields).

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

use std::process::ExitCode;
use std::time::Instant;

use pp_protocols::kpartition::UniformKPartition;
use pp_verify::hitting::{expected_interactions, SolverOptions};
use pp_verify::{ConfigGraph, ExploreError};

fn usage() -> ! {
    eprintln!(
        "usage: pp-verify report [--k-max K] [--n-cap N] [--max-configs M] \
         [--wall-budget-secs S] [--hitting-cap C] [--out PATH]"
    );
    std::process::exit(2)
}

struct Opts {
    k_max: usize,
    n_cap: u64,
    max_configs: usize,
    wall_budget_secs: u64,
    hitting_cap: usize,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            k_max: 6,
            n_cap: 30,
            max_configs: 200_000,
            wall_budget_secs: 120,
            hitting_cap: 20_000,
            out: "BENCH_verify.json".to_string(),
        }
    }
}

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        let parse_num = |name: &str, v: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name}: not a number: {v}");
                usage()
            })
        };
        match flag.as_str() {
            "--k-max" => opts.k_max = parse_num("--k-max", val("--k-max")) as usize,
            "--n-cap" => opts.n_cap = parse_num("--n-cap", val("--n-cap")),
            "--max-configs" => {
                opts.max_configs = parse_num("--max-configs", val("--max-configs")) as usize
            }
            "--wall-budget-secs" => {
                opts.wall_budget_secs = parse_num("--wall-budget-secs", val("--wall-budget-secs"))
            }
            "--hitting-cap" => {
                opts.hitting_cap = parse_num("--hitting-cap", val("--hitting-cap")) as usize
            }
            "--out" => opts.out = val("--out").to_string(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts
}

/// One `(k, n)` rung of the verification ladder.
struct Cell {
    k: usize,
    n: u64,
    /// Reachable configurations explored (partial tally when censored).
    configs: u64,
    terminal_sccs: u64,
    micros: u64,
    /// True when the configuration or wall budget cut exploration short.
    censored: bool,
    /// True only when the terminal-SCC check established stability.
    verified: bool,
    /// Scheduler gap, when the graph was small enough to solve exactly:
    /// (shortest stabilising schedule, exact E[interactions] under the
    /// uniform random scheduler, their rounded ratio).
    gap: Option<(u64, u64, u64)>,
}

/// Checked-envelope row: how far the ladder got for one `k`.
struct EnvelopeRow {
    k: usize,
    /// Largest `n` verified; 0 when even the smallest rung was censored.
    n_max: u64,
    /// True when the ladder stopped on a budget rather than the n-cap.
    censored: bool,
}

fn cell_json(c: &Cell) -> String {
    let mut s = format!("{{\"censored\":{},\"configs\":{}", c.censored, c.configs);
    if let Some((_, expected, _)) = c.gap {
        s.push_str(&format!(",\"expected_interactions\":{expected}"));
    }
    s.push_str(&format!(",\"k\":{},\"micros\":{}", c.k, c.micros));
    if let Some((min, _, _)) = c.gap {
        s.push_str(&format!(",\"min_interactions\":{min}"));
    }
    s.push_str(&format!(",\"n\":{}", c.n));
    if let Some((_, _, speedup)) = c.gap {
        s.push_str(&format!(
            ",\"speedup\":{speedup},\"speedup_basis\":\"interactions\""
        ));
    }
    if !c.censored {
        s.push_str(&format!(",\"terminal_sccs\":{}", c.terminal_sccs));
    }
    s.push_str(&format!(",\"verified\":{}}}", c.verified));
    s
}

fn report_json(cells: &[Cell], envelope: &[EnvelopeRow], opts: &Opts, wall_micros: u64) -> String {
    let cells_json: Vec<String> = cells.iter().map(cell_json).collect();
    let rows_json: Vec<String> = envelope
        .iter()
        .map(|r| {
            format!(
                "{{\"censored\":{},\"k\":{},\"n_max\":{}}}",
                r.censored, r.k, r.n_max
            )
        })
        .collect();
    let configs_total: u64 = cells.iter().map(|c| c.configs).sum();
    let frontier_peak = pp_telemetry::Snapshot::capture_global()
        .value("verify.frontier_peak")
        .unwrap_or(0);
    format!(
        "{{\"bench\":\"verify_envelope\",\"cells\":[{}],\"configs_total\":{},\
         \"envelope\":[{}],\"frontier_peak\":{},\"k_max\":{},\"max_configs\":{},\
         \"micros\":{}}}",
        cells_json.join(","),
        configs_total,
        rows_json.join(","),
        frontier_peak,
        opts.k_max,
        opts.max_configs,
        wall_micros,
    )
}

fn configs_explored() -> u64 {
    pp_telemetry::Snapshot::capture_global()
        .value("verify.configs_explored")
        .unwrap_or(0)
}

/// Verify one ladder rung, censoring on the configuration budget.
fn verify_cell(kp: &UniformKPartition, n: u64, opts: &Opts) -> Cell {
    let k = kp.k();
    let _span = pp_obs::span_labelled("verify.cell", &format!("k{k}n{n}"));
    let proto = kp.compile();
    let before = configs_explored();
    let t0 = Instant::now();
    let graph = match ConfigGraph::explore(&proto, n, opts.max_configs) {
        Ok(g) => g,
        Err(ExploreError::TooManyConfigs { .. }) => {
            return Cell {
                k,
                n,
                configs: configs_explored() - before,
                terminal_sccs: 0,
                micros: t0.elapsed().as_micros() as u64,
                censored: true,
                verified: false,
                gap: None,
            };
        }
    };
    let expected = kp.expected_group_sizes(n);
    let report = graph.verify_stable_partition(|groups| groups == expected);
    let gap = if graph.num_configs() <= opts.hitting_cap {
        scheduler_gap(kp, &graph, n)
    } else {
        None
    };
    Cell {
        k,
        n,
        configs: graph.num_configs() as u64,
        terminal_sccs: report.num_terminal_sccs as u64,
        micros: t0.elapsed().as_micros() as u64,
        censored: false,
        verified: report.verified(),
        gap,
    }
}

/// Exact scheduler gap on a solved instance: optimal schedule length vs
/// expected interactions under the uniform random scheduler.
fn scheduler_gap(
    kp: &UniformKPartition,
    graph: &ConfigGraph<'_>,
    n: u64,
) -> Option<(u64, u64, u64)> {
    let sig = kp.stable_signature(n);
    let stable = |cfg: &[u32]| {
        let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
        sig.matches(&counts)
    };
    let optimal = graph.min_interactions_to(stable)?;
    let exact = expected_interactions(graph, stable, SolverOptions::default()).ok()?;
    let expected = exact.expected_from_initial.round() as u64;
    let speedup = (exact.expected_from_initial / optimal.max(1) as f64).round() as u64;
    Some((optimal, expected, speedup))
}

fn run_report(opts: &Opts) -> ExitCode {
    let _root = pp_obs::span("verify.report");
    let t_start = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    let mut envelope: Vec<EnvelopeRow> = Vec::new();
    let mut failed = false;

    for k in 2..=opts.k_max {
        let kp = UniformKPartition::new(k);
        let mut n_max = 0u64;
        let mut censored_k = false;
        let mut n = (k as u64).max(3);
        while n <= opts.n_cap {
            if t_start.elapsed().as_secs() >= opts.wall_budget_secs {
                censored_k = true;
                break;
            }
            let cell = verify_cell(&kp, n, opts);
            println!(
                "  k={} n={:>3}: {} configs, {} µs{}{}",
                cell.k,
                cell.n,
                cell.configs,
                cell.micros,
                if cell.censored {
                    " (censored: budget)"
                } else if cell.verified {
                    ", verified"
                } else {
                    ", VERIFICATION FAILED"
                },
                match cell.gap {
                    Some((min, exp, gap)) => format!(", scheduler gap {exp}/{min} = {gap}×"),
                    None => String::new(),
                },
            );
            let censored = cell.censored;
            if cell.verified {
                n_max = n;
            } else if !censored {
                failed = true;
            }
            cells.push(cell);
            if censored {
                censored_k = true;
                break;
            }
            n += 1;
        }
        envelope.push(EnvelopeRow {
            k,
            n_max,
            censored: censored_k,
        });
    }

    let wall_micros = t_start.elapsed().as_micros() as u64;
    let json = report_json(&cells, &envelope, opts, wall_micros);
    if let Err(e) = std::fs::write(&opts.out, format!("{json}\n")) {
        eprintln!("pp-verify: cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    for row in &envelope {
        println!(
            "envelope: k={} verified up to n={}{}",
            row.k,
            row.n_max,
            if row.censored {
                " (budget-censored)"
            } else {
                ""
            }
        );
    }
    println!("pp-verify: report written to {}", opts.out);
    if failed {
        eprintln!("pp-verify: a non-censored instance FAILED verification");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => run_report(&parse_opts(&args[1..])),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_ladder_rung_verifies() {
        let opts = Opts::default();
        let kp = UniformKPartition::new(2);
        let cell = verify_cell(&kp, 4, &opts);
        assert!(cell.verified);
        assert!(!cell.censored);
        assert!(cell.configs > 0);
        let (min, expected, speedup) = cell.gap.expect("tiny graph is solvable");
        // The random scheduler can never beat the optimal schedule.
        assert!(expected >= min);
        assert!(speedup >= 1);
    }

    #[test]
    fn censored_cells_report_partial_progress() {
        let opts = Opts {
            max_configs: 3,
            ..Opts::default()
        };
        let kp = UniformKPartition::new(3);
        let cell = verify_cell(&kp, 9, &opts);
        assert!(cell.censored);
        assert!(!cell.verified);
        assert!(cell.configs >= 3);
        let json = cell_json(&cell);
        assert!(json.contains("\"censored\":true"));
        assert!(!json.contains("speedup"));
    }

    #[test]
    fn report_json_is_schema_stable() {
        let cell = Cell {
            k: 2,
            n: 4,
            configs: 10,
            terminal_sccs: 1,
            micros: 123,
            censored: false,
            verified: true,
            gap: Some((4, 9, 2)),
        };
        assert_eq!(
            cell_json(&cell),
            "{\"censored\":false,\"configs\":10,\"expected_interactions\":9,\
             \"k\":2,\"micros\":123,\"min_interactions\":4,\"n\":4,\
             \"speedup\":2,\"speedup_basis\":\"interactions\",\
             \"terminal_sccs\":1,\"verified\":true}"
        );
        let opts = Opts::default();
        let row = EnvelopeRow {
            k: 2,
            n_max: 4,
            censored: false,
        };
        let json = report_json(&[cell], &[row], &opts, 456);
        assert!(json.starts_with("{\"bench\":\"verify_envelope\""));
        assert!(json.contains("\"configs_total\":10"));
        assert!(json.contains("\"envelope\":[{\"censored\":false,\"k\":2,\"n_max\":4}]"));
        assert!(json.ends_with("\"micros\":456}"));
    }
}
