//! Quickstart: divide a population into k equal groups.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's uniform k-partition protocol for `k = 4`, runs it
//! on a population of 30 agents under the uniform random scheduler, and
//! prints the stable partition together with the paper's §5 metric (the
//! number of interactions until stability).

use uniform_k_partition::prelude::*;

fn main() {
    let k = 4;
    let n = 30u64;

    // 1. Build and compile the protocol (3k − 2 = 10 states).
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    println!(
        "protocol: {} — {} states, symmetric: {}",
        proto.name(),
        proto.num_states(),
        proto.is_symmetric()
    );

    // 2. All agents start in the designated initial state.
    let mut pop = CountPopulation::new(&proto, n);

    // 3. The paper's scheduler: uniform random pair each step. The seed
    //    makes the run reproducible.
    let mut sched = UniformRandomScheduler::from_seed(2024);

    // 4. Run until the stable configuration characterised by the paper's
    //    Lemmas 4–6 is reached.
    let criterion = kp.stable_signature(n);
    let result = Simulator::new(&proto)
        .run(&mut pop, &mut sched, &criterion, kp.interaction_budget(n))
        .expect("the protocol stabilises under global fairness");

    println!(
        "stabilised after {} interactions ({} of them state-changing)",
        result.interactions, result.effective_interactions
    );

    // 5. Read off the partition through the output map f.
    let sizes = pop.group_sizes(&proto);
    for (g, &size) in sizes.iter().enumerate() {
        println!("group {}: {size} agents", g + 1);
    }
    assert_eq!(sizes, kp.expected_group_sizes(n));
    println!("uniform: max group difference <= 1  ✓");

    // The Lemma 1 invariant held all along; spot-check it at the end.
    assert!(kp.lemma1_holds(pop.counts()));
}
