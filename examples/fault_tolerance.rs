//! Application: repartitioning after agent failures ("when birds die").
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```
//!
//! The paper's introduction cites fault tolerance (Delporte-Gallet et al.,
//! "When birds die") as a use of uniform k-partition. This example
//! demonstrates the failure mode and the recovery path:
//!
//! 1. A swarm of 40 sensors partitions into 4 groups of 10.
//! 2. A storm knocks out a quarter of the swarm — disproportionately
//!    from group 1 —
//!    leaving the partition badly skewed (the protocol has designated
//!    initial states and is *not* self-stabilizing, so it cannot repair
//!    itself: the survivors' states are frozen).
//! 3. A reset wave re-initialises the survivors (in practice a broadcast
//!    or epidemic reset), and the protocol re-partitions the 29 survivors
//!    into 8+7+7+7 from scratch.
//!
//! The per-agent [`AgentPopulation`] representation is what makes step 2
//! expressible: we remove specific agents, not just counts.

use pp_engine::scheduler::AgentScheduler;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use uniform_k_partition::prelude::*;

fn main() {
    let k = 4;
    let n = 40usize;
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();

    // Phase 1: partition the healthy swarm.
    let mut pop = AgentPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(13);
    let sig = kp.stable_signature(n as u64);
    let run = Simulator::new(&proto)
        .run_agents(&mut pop, &mut sched, &sig, kp.interaction_budget(n as u64))
        .expect("initial partition stabilises");
    println!(
        "phase 1: {} sensors -> groups {:?} after {} interactions",
        n,
        pop.group_sizes(&proto),
        run.interactions
    );

    // Phase 2: the storm. Kill 8 of group 1's sensors and 3 others.
    let mut rng = SmallRng::seed_from_u64(4242);
    let mut group1: Vec<usize> = (0..pop.num_agents() as usize)
        .filter(|&i| pop.group_of(&proto, i).number() == 1)
        .collect();
    group1.shuffle(&mut rng);
    let mut doomed: Vec<usize> = group1.into_iter().take(8).collect();
    let extra: Vec<usize> = [0, 1, 2]
        .into_iter()
        .filter(|i| !doomed.contains(i))
        .take(3)
        .collect();
    doomed.extend(extra);
    doomed.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back first
    for i in doomed {
        pop.remove_agent(i);
    }
    let skewed = pop.group_sizes(&proto);
    println!(
        "phase 2: storm leaves {} survivors, groups {:?} — imbalance {}",
        pop.num_agents(),
        skewed,
        skewed.iter().max().unwrap() - skewed.iter().min().unwrap()
    );
    assert!(
        skewed.iter().max().unwrap() - skewed.iter().min().unwrap() > 1,
        "the partition is no longer uniform"
    );

    // The frozen survivors cannot repair themselves: their configuration
    // is already group-stable (settled g-agents never interact usefully).
    let survivors = pop.num_agents();

    // Phase 3: reset wave re-initialises every survivor; re-partition.
    for i in 0..survivors as usize {
        pop.set_state(i, proto.initial_state());
    }
    let sig = kp.stable_signature(survivors);
    let mut sched = UniformRandomScheduler::from_seed(14);
    let run = Simulator::new(&proto)
        .run_agents(&mut pop, &mut sched, &sig, kp.interaction_budget(survivors))
        .expect("re-partition stabilises");
    let healed = pop.group_sizes(&proto);
    println!(
        "phase 3: re-partitioned {survivors} survivors -> {:?} after {} interactions",
        healed, run.interactions
    );
    assert_eq!(healed, kp.expected_group_sizes(survivors));
    println!("uniformity restored  ✓");

    // Bonus: the same machinery runs on restricted interaction graphs.
    // On a ring the chain-builder can still meet everyone eventually, but
    // scheduling is graph-limited; this is outside the paper's model
    // (complete graphs) and shown here only as an engine capability.
    let g = uniform_k_partition::topo::EdgeListTopology::ring(survivors as usize);
    let mut ring_sched = uniform_k_partition::topo::TopologyScheduler::uniform(Box::new(g), 15);
    let mut ring_pop = AgentPopulation::new(&proto, survivors as usize);
    let _ = ring_sched.select_agents(&ring_pop);
    let res = Simulator::new(&proto).run_agents(
        &mut ring_pop,
        &mut ring_sched,
        &kp.stable_signature(survivors),
        5_000_000,
    );
    match res {
        Ok(r) => println!(
            "ring topology: stabilised anyway after {} interactions (slower mixing)",
            r.interactions
        ),
        Err(e) => println!("ring topology: {e} — the complete-graph assumption matters"),
    }
}
