//! Build, simulate, solve, and verify *your own* population protocol —
//! the full toolkit in one file.
//!
//! ```sh
//! cargo run --release --example custom_protocol
//! ```
//!
//! The protocol under study is not from the paper: a symmetric
//! "handshake matching" protocol where agents pair off into couples
//! (group 2) and at most one agent remains single (group 1):
//!
//! ```text
//! (idle , idle ) -> (idle', idle')
//! (idle', idle') -> (idle , idle )
//! (idle , idle') -> (matched, matched)
//! (matched, idle) -> (matched, idle̅)        [flip, for fairness traction]
//! ```
//!
//! — i.e. exactly the k = 2 skeleton of the paper's machinery, re-derived
//! from scratch against the engine API. The walkthrough then:
//!
//! 1. simulates it (sampled behaviour),
//! 2. solves its exact expected stabilisation time (Markov analysis),
//! 3. model-checks it under global fairness (all terminal SCCs good),
//! 4. prints its rule graph as GraphViz DOT.

use pp_engine::dot::protocol_dot;
use uniform_k_partition::prelude::*;
use uniform_k_partition::verify::hitting::{hitting_moments, SolverOptions};
use uniform_k_partition::verify::ConfigGraph;

fn main() {
    // --- 1. Describe and compile -----------------------------------
    let mut spec = ProtocolSpec::new("handshake-matching");
    let idle = spec.add_state("idle", 1);
    let idle2 = spec.add_state("idle'", 1);
    let matched = spec.add_state("matched", 2);
    spec.set_initial(idle);
    spec.add_rule(idle, idle, idle2, idle2);
    spec.add_rule(idle2, idle2, idle, idle);
    spec.add_rule_symmetric(idle, idle2, matched, matched);
    spec.add_rule_symmetric(matched, idle, matched, idle2);
    spec.add_rule_symmetric(matched, idle2, matched, idle);
    let proto = spec.compile().expect("consistent spec");
    println!(
        "protocol `{}`: {} states, symmetric = {}",
        proto.name(),
        proto.num_states(),
        proto.is_symmetric()
    );

    let n: u64 = 9;
    // Stable: ⌊n/2⌋ pairs matched, n mod 2 agents still idle.
    let stable = move |counts: &[u64]| counts[matched.index()] == (n / 2) * 2;

    // --- 2. Simulate -------------------------------------------------
    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(7);
    struct Crit<F>(F);
    impl<F: Fn(&[u64]) -> bool> StabilityCriterion for Crit<F> {
        fn is_stable(&self, _p: &CompiledProtocol, c: &[u64]) -> bool {
            (self.0)(c)
        }
    }
    let run = Simulator::new(&proto)
        .run(&mut pop, &mut sched, &Crit(stable), 1_000_000)
        .expect("stabilises");
    println!(
        "simulated: stabilised after {} interactions; groups {:?}",
        run.interactions,
        pop.group_sizes(&proto)
    );

    // --- 3. Solve exactly -------------------------------------------
    let graph = ConfigGraph::explore(&proto, n, 100_000).expect("small graph");
    let moments = hitting_moments(
        &graph,
        |cfg| {
            let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
            stable(&counts)
        },
        SolverOptions::default(),
    )
    .expect("solvable");
    println!(
        "exact: E[T] = {:.2} ± {:.2} over {} reachable configurations \
         (optimal schedule: {} interactions)",
        moments.mean,
        moments.std_dev,
        graph.num_configs(),
        graph
            .min_interactions_to(|cfg| {
                let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                stable(&counts)
            })
            .unwrap()
    );

    // --- 4. Verify under global fairness ----------------------------
    let report = graph.verify_stable_partition(|groups| {
        groups == [n % 2, n - n % 2] // singles in group 1, matched in 2
    });
    println!(
        "verified: {} ({} terminal SCCs)",
        if report.verified() { "yes ✓" } else { "NO" },
        report.num_terminal_sccs
    );
    assert!(report.verified());

    // --- 5. Export the rule graph -----------------------------------
    let dot = protocol_dot(&proto);
    let path = std::env::temp_dir().join("handshake-matching.dot");
    std::fs::write(&path, &dot).expect("write dot");
    println!(
        "rule graph written to {} (render with `dot -Tsvg`)",
        path.display()
    );
}
