//! Walk through the paper's worked examples (Figures 1 and 2) step by
//! step, printing every configuration.
//!
//! ```sh
//! cargo run --example trace_walkthrough
//! ```
//!
//! Figure 1 (§3.1): six agents, `k = 6`. Agents flip between `initial`
//! and `initial'` until rule 5 creates a chain-builder, which then
//! recruits everyone — the happy path of the basic strategy.
//!
//! Figure 2 (§3.2): starting from a configuration with *two* partial
//! chains (`m2` and `m4`), rule 8 aborts them into `d1`/`d3` and rules
//! 9–10 refund the settled agents back to `initial` — the unwind
//! mechanism that makes the protocol correct.

use pp_engine::trace::ScriptedExecution;
use uniform_k_partition::prelude::*;

fn show(exec: &ScriptedExecution<'_>, label: &str) {
    println!("  {label:<24} {}", exec.config_string());
}

fn main() {
    let k = 6;
    let kp = UniformKPartition::new(k);
    let proto = kp.compile();

    println!("== Figure 1: the basic strategy on n = 6, k = 6\n");
    let mut exec = ScriptedExecution::new(&proto, 6);
    show(&exec, "(a) all initial");

    // (a1,a2), (a3,a4), (a5,a6): everyone flips to initial'.
    exec.interact_all(&[(0, 1), (2, 3), (4, 5)]);
    show(&exec, "(b) after three flips");

    // (a1,a6), (a2,a3), (a4,a5): everyone flips back — under an unfair
    // scheduler this could repeat forever; global fairness forbids it.
    exec.interact_all(&[(0, 5), (1, 2), (3, 4)]);
    show(&exec, "(c) flipped back");

    // (a5,a6) then (a1,a6): now a1 is initial and a6 is initial', so
    // rule 5 fires: a1 -> g1, a6 -> m2.
    exec.interact(4, 5);
    show(&exec, "(d) a5,a6 flip");
    exec.interact(0, 5);
    show(&exec, "(e) rule 5: g1 + m2");

    // a6 recruits a2..a5 in turn (rules 6 then 7), ending in g6 itself.
    exec.interact(5, 1);
    exec.interact(5, 2);
    exec.interact(5, 3);
    exec.interact(5, 4);
    show(&exec, "(f) chain complete");

    let sizes = exec.population().group_sizes(&proto);
    println!("\n  final group sizes: {sizes:?} — one agent per group\n");
    assert_eq!(sizes, vec![1; 6]);

    println!("== Figure 2: chain collision and unwind (states in D)\n");
    // Configuration (a) of Figure 2: two chains started concurrently (two
    // rule-5 firings), so two g1 agents and two m2 builders exist —
    // consistent with Lemma 1 (#g1 = #m2 + #m4 + ... = 2).
    let mut exec = ScriptedExecution::from_states(
        &proto,
        vec![
            kp.g(1),      // a1 — first chain's g1
            kp.g(1),      // a2 — second chain's g1
            kp.initial(), // a3
            kp.initial(), // a4
            kp.m(2),      // a5 — first chain's builder
            kp.m(2),      // a6 — second chain's builder
        ],
    );
    show(&exec, "(a) two chains");

    // a5 absorbs the remaining free agents (rule 6), starving a6's chain:
    exec.interact(2, 4); // a3 -> g2, a5 -> m3
    exec.interact(3, 4); // a4 -> g3, a5 -> m4
    show(&exec, "(c) no free agents left");

    // Rules 1–7 are now all disabled: without rule 8 this would be a
    // deadlock (the §3.2 failure). Rule 8: the builders collide and abort.
    exec.interact(4, 5);
    show(&exec, "(d) rule 8: m4,m2 -> d3,d1");

    // The paper's exact unwind sequence: (a1,a6), (a4,a5), (a3,a5),
    // (a2,a5) — rules 10 and 9 refund every settled agent.
    exec.interact(0, 5); // (g1, d1) -> (initial, initial)      [rule 10]
    show(&exec, "    (a1,a6): d1 refunds g1");
    exec.interact(3, 4); // (g3, d3) -> (initial, d2)           [rule 9]
    show(&exec, "    (a4,a5): d3 refunds g3");
    exec.interact(2, 4); // (g2, d2) -> (initial, d1)           [rule 9]
    show(&exec, "    (a3,a5): d2 refunds g2");
    exec.interact(1, 4); // (g1, d1) -> (initial, initial)      [rule 10]
    show(&exec, "(e) (a2,a5): all initial again");

    use pp_engine::population::Population;
    assert_eq!(
        exec.population().count(kp.initial()),
        6,
        "Figure 2 (e): every agent is back in the initial state"
    );
    assert!(kp.lemma1_holds(exec.population().counts()));
    println!("\n  aborted chains fully refunded — the population can retry cleanly");
}
