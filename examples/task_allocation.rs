//! Application: weighted task allocation with the ratio-partition
//! extension.
//!
//! ```sh
//! cargo run --release --example task_allocation
//! ```
//!
//! The paper's second motivating application: "assign different tasks to
//! different groups and make agents execute multiple tasks at the same
//! time". Real task mixes are rarely uniform, which is exactly what the
//! R-generalized partition (Umino et al., the extension cited in §1.2)
//! handles: here a molecular-robot swarm splits 3:2:1 between *sensing*,
//! *transport*, and *repair* duty.

use pp_engine::population::{CountPopulation, Population};
use pp_engine::scheduler::UniformRandomScheduler;
use pp_engine::simulator::Simulator;
use uniform_k_partition::protocols::ratio::RatioPartition;

const TASKS: [&str; 3] = ["sensing", "transport", "repair"];

fn main() {
    let ratios = vec![3u32, 2, 1];
    let n = 120u64;

    let rp = RatioPartition::new(ratios.clone());
    let proto = rp.compile();
    println!(
        "ratio partition {:?} over {} slots — {} states",
        ratios,
        rp.num_slots(),
        proto.num_states()
    );

    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(99);
    let criterion = rp.stable_signature(n);
    let run = Simulator::new(&proto)
        .run(
            &mut pop,
            &mut sched,
            &criterion,
            rp.slots().interaction_budget(n),
        )
        .expect("ratio partition stabilises");

    println!("stabilised after {} interactions\n", run.interactions);

    let sizes = pop.group_sizes(&proto);
    let total_ratio: u32 = ratios.iter().sum();
    for ((task, &size), &r) in TASKS.iter().zip(&sizes).zip(&ratios) {
        let ideal = n as f64 * r as f64 / total_ratio as f64;
        println!(
            "{task:<10} {size:>4} robots (ideal {ideal:>5.1}, deviation {:+.1})",
            size as f64 - ideal
        );
    }
    assert_eq!(sizes, rp.expected_group_sizes(n));

    // The deviation guarantee: group i misses its ideal share by < r_i.
    for (i, (&size, &r)) in sizes.iter().zip(&ratios).enumerate() {
        let ideal = n as f64 * r as f64 / total_ratio as f64;
        assert!(
            (size as f64 - ideal).abs() < r as f64 + 1e-9,
            "group {} deviates more than its ratio weight",
            i + 1
        );
    }
    println!("\nall groups within their ratio-weight deviation bound  ✓");
}
