//! Exhaustively verify Theorem 1 on small instances.
//!
//! ```sh
//! cargo run --release --example model_check
//! ```
//!
//! Random simulation cannot prove correctness *under global fairness* —
//! fairness constrains infinite schedules. This example builds the full
//! reachable-configuration digraph for small `(k, n)` and checks the
//! exact semantic condition: every terminal strongly connected component
//! consists of correctly-partitioned configurations in which no enabled
//! transition changes any agent's group. It also re-proves Lemma 1 on
//! every reachable configuration.

use uniform_k_partition::prelude::*;
use uniform_k_partition::verify::ConfigGraph;

fn main() {
    println!("Theorem 1, mechanically, on small instances:\n");
    println!(
        "{:<6} {:<6} {:>10} {:>9} {:>8}   verdict",
        "k", "n", "configs", "terminal", "lemma1"
    );

    for k in [2usize, 3, 4] {
        let kp = UniformKPartition::new(k);
        let proto = kp.compile();
        for n in 3..=10u64 {
            let graph = match ConfigGraph::explore(&proto, n, 2_000_000) {
                Ok(g) => g,
                Err(e) => {
                    println!("{k:<6} {n:<6} {e}");
                    continue;
                }
            };
            // Lemma 1 on every reachable configuration.
            let lemma1_ok = graph
                .check_invariant(|cfg| {
                    let counts: Vec<u64> = cfg.iter().map(|&c| u64::from(c)).collect();
                    kp.lemma1_holds(&counts)
                })
                .is_none();
            // Theorem 1: all terminal SCCs are uniform and group-frozen.
            let expected = kp.expected_group_sizes(n);
            let report = graph.verify_stable_partition(|groups| groups == expected);
            println!(
                "{:<6} {:<6} {:>10} {:>9} {:>8}   {}",
                k,
                n,
                report.num_configs,
                report.num_terminal_sccs,
                if lemma1_ok { "holds" } else { "FAILS" },
                if report.verified() {
                    "verified ✓".to_string()
                } else {
                    format!("FAILED: {:?}", report.failure)
                }
            );
            assert!(report.verified() && lemma1_ok);
        }
    }
    println!("\nEvery globally fair execution of these instances stabilises to the");
    println!("uniform partition — not just the sampled ones.");
}
