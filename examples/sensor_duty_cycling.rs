//! Application: energy-saving duty cycling in a sensor swarm.
//!
//! ```sh
//! cargo run --release --example sensor_duty_cycling
//! ```
//!
//! The paper's introduction motivates uniform k-partition with energy
//! management: "switching on some groups and switching off the others".
//! This example plays that scenario end to end on the bird-sensor network
//! the paper describes: a swarm of sensors with no identifiers and no
//! knowledge of `n` partitions itself into `k` shifts via opportunistic
//! pairwise encounters; the shifts then take turns being awake.
//!
//! We compare the battery lifetime of the duty-cycled swarm against an
//! always-on swarm, charging each sensor for its share of the partition
//! protocol's interactions plus its awake time.

use uniform_k_partition::prelude::*;

/// Energy model (arbitrary units per time slot / event).
const BATTERY: f64 = 10_000.0;
const AWAKE_COST_PER_SLOT: f64 = 1.0;
const ASLEEP_COST_PER_SLOT: f64 = 0.05;
const INTERACTION_COST: f64 = 0.01;

fn main() {
    let k = 3; // three shifts
    let n = 60u64; // sixty sensors

    let kp = UniformKPartition::new(k);
    let proto = kp.compile();
    let mut pop = CountPopulation::new(&proto, n);
    let mut sched = UniformRandomScheduler::from_seed(7);
    let criterion = kp.stable_signature(n);
    let run = Simulator::new(&proto)
        .run(&mut pop, &mut sched, &criterion, kp.interaction_budget(n))
        .expect("partition stabilises");

    let sizes = pop.group_sizes(&proto);
    println!("partitioned {n} sensors into {k} shifts: {sizes:?}");
    println!(
        "partitioning cost: {} interactions total (~{:.1} per sensor)",
        run.interactions,
        run.interactions as f64 / n as f64
    );

    // Each sensor participated in ~2·interactions/n pairwise exchanges.
    let partition_energy = 2.0 * run.interactions as f64 / n as f64 * INTERACTION_COST;

    // Duty cycling: shift i is awake every k-th slot.
    let duty_cost_per_slot =
        (AWAKE_COST_PER_SLOT + (k as f64 - 1.0) * ASLEEP_COST_PER_SLOT) / k as f64;
    let lifetime_duty = (BATTERY - partition_energy) / duty_cost_per_slot;
    let lifetime_always_on = BATTERY / AWAKE_COST_PER_SLOT;

    println!();
    println!("always-on lifetime : {lifetime_always_on:>10.0} slots");
    println!(
        "duty-cycled ({} shifts): {lifetime_duty:>10.0} slots ({:.2}x, partition \
         overhead {:.3} units/sensor)",
        k,
        lifetime_duty / lifetime_always_on,
        partition_energy
    );

    // Uniformity is what makes rotation fair: every shift covers the
    // field with (almost) the same sensor count.
    let max = sizes.iter().max().unwrap();
    let min = sizes.iter().min().unwrap();
    assert!(max - min <= 1);
    println!(
        "coverage per shift: between {min} and {max} sensors — every slot has \
         within-1 identical sensing capacity"
    );
}
