//! # uniform-k-partition
//!
//! A full reproduction of *"A Population Protocol for Uniform k-partition
//! under Global Fairness"* (Yasumi, Kitamura, Ooshita, Izumi, Inoue;
//! IJNC 9(1), 2019 — journal version of the IPPS 2018 paper): the paper's
//! symmetric `3k − 2`-state protocol, the simulation substrate its
//! evaluation runs on, baselines, an exhaustive model checker for global
//! fairness, and harnesses regenerating every figure of §5.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`engine`] — population-protocol simulation engine ([`pp_engine`]).
//! * [`protocols`] — the k-partition protocol and companions
//!   ([`pp_protocols`]).
//! * [`verify`] — exhaustive correctness checking under global fairness
//!   ([`pp_verify`]).
//! * [`analysis`] — trial runners, statistics, and table output
//!   ([`pp_analysis`]).
//! * [`telemetry`] — zero-dependency metrics registry and JSONL export
//!   ([`pp_telemetry`]).
//! * [`trace`] — recordable, replayable execution traces with
//!   protocol-semantic convergence diagnostics ([`pp_trace`]).
//! * [`topo`] — graph-structured populations, churn, and
//!   adversarial-but-fair schedulers ([`pp_topo`]).
//!
//! ## Quickstart
//!
//! ```
//! use uniform_k_partition::prelude::*;
//!
//! // Partition 30 agents into 4 groups of sizes {8, 8, 7, 7}.
//! let proto = UniformKPartition::new(4).compile();
//! let mut pop = CountPopulation::new(&proto, 30);
//! let mut sched = UniformRandomScheduler::from_seed(2024);
//! let criterion = UniformKPartition::new(4).stable_signature(30);
//! let result = Simulator::new(&proto)
//!     .run(&mut pop, &mut sched, &criterion, u64::MAX)
//!     .unwrap();
//! assert_eq!(pop.group_sizes(&proto), vec![8, 8, 7, 7]);
//! println!("stabilised after {} interactions", result.interactions);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo, clippy::print_stdout)]

pub use pp_analysis as analysis;
pub use pp_engine as engine;
pub use pp_protocols as protocols;
pub use pp_telemetry as telemetry;
pub use pp_topo as topo;
pub use pp_trace as trace;
pub use pp_verify as verify;

/// The most common imports, bundled.
pub mod prelude {
    pub use pp_engine::population::{AgentPopulation, CountPopulation, Population};
    pub use pp_engine::protocol::{CompiledProtocol, GroupId, StateId};
    pub use pp_engine::scheduler::{PairScheduler, UniformRandomScheduler};
    pub use pp_engine::simulator::{RunResult, Simulator};
    pub use pp_engine::spec::ProtocolSpec;
    pub use pp_engine::stability::{GroupClosure, Signature, Silent, StabilityCriterion};
    pub use pp_engine::BatchConfig;
    pub use pp_protocols::kpartition::UniformKPartition;
}

#[cfg(test)]
mod facade_tests {
    use super::prelude::*;

    /// The doc-quickstart, kept compiling and correct as a test.
    #[test]
    fn quickstart_flow() {
        let kp = UniformKPartition::new(4);
        let proto = kp.compile();
        let mut pop = CountPopulation::new(&proto, 30);
        let mut sched = UniformRandomScheduler::from_seed(2024);
        let result = Simulator::new(&proto)
            .run(&mut pop, &mut sched, &kp.stable_signature(30), u64::MAX)
            .unwrap();
        assert_eq!(pop.group_sizes(&proto), vec![8, 8, 7, 7]);
        assert!(result.interactions > 0);
    }

    /// All six crates are reachable through the facade.
    #[test]
    fn reexports_resolve() {
        let _ = crate::engine::seeds::derive(1, 2);
        let _ = crate::protocols::bipartition::UniformBipartition::new();
        let _ = crate::analysis::stats::RunningStats::new();
        let proto = crate::protocols::classics::epidemic();
        let g = crate::verify::ConfigGraph::explore(&proto, 3, 100).unwrap();
        assert_eq!(g.num_configs(), 1);
        assert_eq!(crate::telemetry::bucket_of(0), 0);
        assert_eq!(crate::trace::TraceKernel::Leap.name(), "leap");
        assert!(crate::topo::Dynamics::default_dynamics().is_default());
    }
}
