#!/bin/bash
# Regenerates every experiment artifact at paper fidelity (100 trials).
# Figure logs + CSVs land in results/. ~30-40 min on one core, dominated
# by fig6's k >= 12 points.
set -e
cd /root/repo
for bin in fig3 fig4 fig5 ablation_d_states baselines exact_vs_sim variants distributions trajectory; do
  echo "=== running $bin"
  cargo run --release -q -p pp-bench --bin $bin > results/$bin.log 2>&1
done
echo "=== running fig6 (k up to 16)"
PP_FIG6_KMAX=16 cargo run --release -q -p pp-bench --bin fig6 > results/fig6.log 2>&1
echo "ALL EXPERIMENTS DONE"
