#!/bin/bash
# Regenerates every experiment artifact at paper fidelity (100 trials).
#
# One `pp-sweep run all` executes the union of every plan's cells —
# deduplicated, sharded across cores, checkpointed to per-cell journals
# (safe to ctrl-C and re-run: it resumes), and cached in results/store/
# (a completed rerun is a no-op). The per-plan invocations afterwards are
# pure cache hits that just re-render the legacy per-figure logs.
#
# Figure logs + CSVs land in results/. Dominated by fig6's k >= 12 points
# on a cold cache; nearly instant on a warm one.
set -e
cd /root/repo

cargo build --release -q

echo "=== pp-sweep run all (executes every plan's cells, cached + resumable)"
PP_FIG6_KMAX=16 cargo run --release -q -p pp-sweep --bin pp-sweep -- run all \
  > results/run_all.log 2>&1

echo "=== re-rendering per-plan logs from the store (cache hits)"
for plan in fig3 fig4 fig5 fig6 ablation_d_states baselines variants distributions trajectory; do
  PP_FIG6_KMAX=16 cargo run --release -q -p pp-sweep --bin pp-sweep -- run $plan \
    > results/$plan.log 2>&1
done

echo "=== running exact_vs_sim (closed-form check; standalone, not a sweep plan)"
cargo run --release -q -p pp-bench --bin exact_vs_sim > results/exact_vs_sim.log 2>&1

echo "ALL EXPERIMENTS DONE"
