//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the API subset its benches use: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! reports the mean and minimum wall-clock time over `sample_size`
//! timed samples after one warm-up — enough to eyeball regressions; not a
//! substitute for the real harness's outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_samples, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: 10,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Run an unparameterised benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.samples, &mut f);
        self
    }

    /// Close the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a bare parameter.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: usize,
    recorded: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `samples` timed calls; records
    /// mean and minimum.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.recorded = Some((total / self.samples as u32, best));
    }
}

fn run_benchmark(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        recorded: None,
    };
    f(&mut b);
    match b.recorded {
        Some((mean, best)) => println!("{label:<50} mean {mean:>12.3?}   min {best:>12.3?}"),
        None => println!("{label:<50} (no iter() call)"),
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter("x7"), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(bench_entry, sample_bench);

    #[test]
    fn group_macro_produces_callable() {
        bench_entry();
    }
}
