//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest's API its test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` headers and
//!   multiple `#[test]` functions per block);
//! * [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_filter`];
//! * integer range strategies, tuple strategies, [`any`], and
//!   [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and generated-input seed instead), and cases are fully
//! deterministic — case `i` of a test always sees the same inputs, so CI
//! failures reproduce locally by construction.

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test configuration. Only `cases` is modelled.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case`; fixed base seed keeps runs identical
    /// across processes and machines.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x5DEE_CE66_D1CE_4E5Bu64 ^ ((case as u64) << 32 | case as u64),
        }
    }

    /// Next 64 uniformly mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// A value generator. Unlike upstream there is no shrinking tree; a
/// strategy just produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred`; retries with fresh draws, panicking
    /// (with `reason`) if the predicate keeps failing.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Full-domain strategy for `T`; see [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`], converted from a `usize` or a
    /// `Range<usize>`.
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for vectors whose length lies in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Prints the failing case number when a property panics (the shim's
/// substitute for shrinking: cases are deterministic, so the number fully
/// identifies the inputs).
pub struct CaseGuard {
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arm for case `case`.
    pub fn new(case: u32) -> Self {
        CaseGuard { case, armed: true }
    }

    /// Case finished cleanly.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest (shim): property failed on case {} — cases are \
                 deterministic, rerun reproduces it exactly",
                self.case
            );
        }
    }
}

/// Assert inside a property; formats like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property; formats like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property; formats like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    let __guard = $crate::CaseGuard::new(__case);
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 5u64..=7) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y), "y = {} escaped", y);
        }

        /// Tuples, maps, filters, and collection::vec compose.
        #[test]
        fn combinators_compose(
            (a, b) in (0u32..5, 10u32..15),
            e in arb_even(),
            v in crate::collection::vec(0u64..5, 2..6).prop_filter(
                "nonempty sum", |v| v.iter().sum::<u64>() > 0),
        ) {
            prop_assert!(a < 5 && (10..15).contains(&b));
            prop_assert_eq!(e % 2, 0);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_ne!(v.iter().sum::<u64>(), 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1_000_000, any::<u64>());
        let mut r1 = crate::TestRng::for_case(3);
        let mut r2 = crate::TestRng::for_case(3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
