//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of rayon's API it uses: `into_par_iter().map(f)
//! .collect()` over ranges and vectors. Execution is genuinely parallel —
//! a scoped worker pool pulls indices off a shared atomic counter — and
//! **order-preserving**: `collect()` yields results in input order, which
//! is what keeps seed-derived experiment output deterministic regardless
//! of thread scheduling.
//!
//! Nesting policy: a `par` region inside a worker thread runs
//! sequentially inline (one level of parallelism saturates the machine;
//! unbounded nesting would oversubscribe it). This mirrors how the
//! experiment stack uses rayon — cells across workers, trials inside a
//! cell — without a work-stealing runtime.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

thread_local! {
    /// Set while the current thread is a pool worker; nested parallel
    /// regions then run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of workers: `RAYON_NUM_THREADS` override, else available
/// parallelism.
fn num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Number of worker threads a parallel region will use (real rayon's
/// `current_num_threads`): the `RAYON_NUM_THREADS` override, else
/// available parallelism.
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Order-preserving parallel map: applies `f` to every item, returning
/// results in input order. Sequential when nested inside another
/// `par_map`, when only one worker is available, or for singleton inputs.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 || IN_POOL.with(|p| p.get()) {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let results = &results;
            let next = &next;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("claimed once");
                    let out = f(item);
                    *results[i].lock().unwrap() = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Conversion into a (shim) parallel iterator.
pub trait IntoParallelIterator {
    /// Item yielded by the iterator.
    type Item: Send;

    /// Materialise into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_iter_range!(u32, u64, usize);

/// A materialised parallel iterator (shim: a vector plus deferred ops).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Execute the map on the worker pool and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0u64..1000).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn nested_regions_run_inline_and_agree() {
        let out: Vec<Vec<usize>> = (0usize..8)
            .into_par_iter()
            .map(|i| (0..i).into_par_iter().map(|j| j + i).collect())
            .collect();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..i).map(|j| j + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let _: Vec<()> = (0usize..64)
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        // One thread only if the host genuinely has a single core.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(distinct > 1, "expected parallel execution, saw {distinct}");
        }
    }
}
