//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Slice extensions: in-place shuffling and element choice.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SmallRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
