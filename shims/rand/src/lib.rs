//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! the workspace vendors the small slice of rand 0.8's API it actually
//! uses: [`rngs::SmallRng`] (here xoshiro256++ — the same family the real
//! `SmallRng` uses on 64-bit targets), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The *stream* differs from upstream rand (no compatibility is claimed),
//! but every guarantee the workspace relies on holds: seeding is
//! deterministic, `gen_range` is unbiased (Lemire rejection), and
//! identical seeds produce identical sequences across platforms and
//! processes.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer
    /// ranges). Unbiased via Lemire's multiply-shift rejection.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53-bit mantissa comparison; exact for p = 0 and p = 1.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample. Implemented for the integer
/// `Range` / `RangeInclusive` types the workspace draws from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, bound)` (Lemire's method).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
    loop {
        let wide = (rng.next_u64() as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..=5_500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 7];
        for _ in 0..7_000 {
            counts[uniform_below(&mut rng, 7) as usize] += 1;
        }
        for c in counts {
            assert!((800..=1_200).contains(&c), "{counts:?}");
        }
    }
}
