//! Small, fast generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
/// Not cryptographically secure; excellent statistical quality and a
/// 2^256 − 1 period, far beyond any sweep this workspace runs.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand_core documents for small seeds;
        // guarantees a non-zero state for every seed.
        let mut z = seed;
        SmallRng {
            s: [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xoshiro_stream() {
        // Reference vector: xoshiro256++ from the all-SplitMix64(0..4)
        // state must differ step to step and be reproducible.
        let mut a = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let mut b = SmallRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn zero_seed_has_nonzero_state() {
        let rng = SmallRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
    }
}
